// Unit tests for the observability layer (opentla/obs): counter
// determinism across identical runs, span-nesting well-formedness,
// golden renderer output, and the runtime-disabled no-op guarantee.

#include <gtest/gtest.h>

#include <chrono>
#include <deque>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "opentla/graph/state_graph.hpp"
#include "opentla/graph/successor.hpp"
#include "opentla/obs/export.hpp"
#include "opentla/obs/memory.hpp"
#include "opentla/obs/obs.hpp"
#include "opentla/obs/profiler.hpp"
#include "opentla/obs/progress.hpp"

namespace opentla {
namespace {

namespace obs = ::opentla::obs;

// Every test starts from a clean registry and leaves collection off, so
// tests compose regardless of execution order.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(false);
    obs::reset();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::reset();
  }
};

TEST_F(ObsTest, NamesAreStableSnakeCase) {
  for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
    const std::string n = obs::name(static_cast<obs::Counter>(i));
    EXPECT_NE(n, "?");
    for (char c : n) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')
          << n;
    }
  }
  for (std::size_t i = 0; i < obs::kNumGauges; ++i) {
    EXPECT_NE(std::string(obs::name(static_cast<obs::Gauge>(i))), "?");
  }
  EXPECT_STREQ(obs::name(obs::Counter::StatesGenerated), "states_generated");
  EXPECT_STREQ(obs::name(obs::Gauge::PeakConfigurationCount),
               "peak_configuration_count");
}

// The same exploration must produce byte-identical counter deltas: the
// engine's instrumentation counts algorithmic events, not wall-clock
// accidents.
TEST_F(ObsTest, CountersAreDeterministicAcrossIdenticalRuns) {
  if (!obs::compile_time_enabled()) {
    GTEST_SKIP() << "engine instrumentation compiled out (-DOPENTLA_OBS=OFF)";
  }
  VarTable vars;
  const VarId x = vars.declare("x", range_domain(0, 7));
  const Expr next =
      ex::lor(ex::land(ex::lt(ex::var(x), ex::integer(7)),
                       ex::eq(ex::primed_var(x), ex::add(ex::var(x), ex::integer(1)))),
              ex::land(ex::eq(ex::var(x), ex::integer(7)),
                       ex::eq(ex::primed_var(x), ex::integer(0))));

  auto run = [&]() {
    obs::ScopedSink sink;
    ActionSuccessors gen(vars, next);
    StateGraph g(vars, {State({Value::integer(0)})},
                 [&gen](const State& s, const std::function<void(const State&)>& emit) {
                   gen.for_each_successor(s, emit);
                 });
    EXPECT_EQ(g.num_states(), 8u);
    return sink.take();
  };

  const obs::Snapshot a = run();
  const obs::Snapshot b = run();
  EXPECT_GT(a.counter(obs::Counter::StatesGenerated), 0u);
  EXPECT_GT(a.counter(obs::Counter::SuccessorsEnumerated), 0u);
  for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
    EXPECT_EQ(a.counters[i], b.counters[i])
        << obs::name(static_cast<obs::Counter>(i));
  }
}

// Nested ScopedSinks each see their own delta.
TEST_F(ObsTest, ScopedSinkIsolatesItsScope) {
  obs::ScopedSink outer;
  obs::count(obs::Counter::SccPasses, 3);
  {
    obs::ScopedSink inner;
    obs::count(obs::Counter::SccPasses, 2);
    EXPECT_EQ(inner.take().counter(obs::Counter::SccPasses), 2u);
  }
  EXPECT_EQ(outer.take().counter(obs::Counter::SccPasses), 5u);
}

TEST_F(ObsTest, GaugeKeepsHighWaterMark) {
  obs::set_enabled(true);
  obs::gauge_max(obs::Gauge::PeakGraphStates, 10);
  obs::gauge_max(obs::Gauge::PeakGraphStates, 4);
  obs::gauge_max(obs::Gauge::PeakGraphStates, 12);
  obs::gauge_max(obs::Gauge::PeakGraphStates, 11);
  EXPECT_EQ(obs::snapshot().gauge(obs::Gauge::PeakGraphStates), 12u);
}

// Spans must form a forest: unique nonzero ids, parents that are either 0
// or another recorded span, and child intervals contained in the parent's.
TEST_F(ObsTest, SpanNestingIsWellFormed) {
  obs::set_enabled(true);
  {
    obs::Span outer("outer");
    { obs::Span inner_a("inner_a"); }
    { obs::Span inner_b("inner_b"); }
  }
  const obs::Snapshot snap = obs::snapshot();
  ASSERT_EQ(snap.spans.size(), 3u);
  EXPECT_EQ(snap.spans_dropped, 0u);

  // Spans are recorded at close: children first, the outer span last.
  const obs::SpanRecord& inner_a = snap.spans[0];
  const obs::SpanRecord& inner_b = snap.spans[1];
  const obs::SpanRecord& outer = snap.spans[2];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner_a.name, "inner_a");
  EXPECT_EQ(inner_b.name, "inner_b");

  std::set<std::uint32_t> ids;
  for (const obs::SpanRecord& s : snap.spans) {
    EXPECT_GT(s.id, 0u);
    EXPECT_TRUE(ids.insert(s.id).second) << "duplicate span id " << s.id;
  }
  for (const obs::SpanRecord& s : snap.spans) {
    EXPECT_TRUE(s.parent == 0 || ids.count(s.parent)) << s.name;
  }
  EXPECT_EQ(outer.parent, 0u);
  EXPECT_EQ(inner_a.parent, outer.id);
  EXPECT_EQ(inner_b.parent, outer.id);

  // Interval containment (monotonic clock, child closes before parent).
  for (const obs::SpanRecord* child : {&inner_a, &inner_b}) {
    EXPECT_GE(child->start_us, outer.start_us);
    EXPECT_LE(child->start_us + child->dur_us, outer.start_us + outer.dur_us);
  }
  EXPECT_LE(inner_a.start_us + inner_a.dur_us, inner_b.start_us);
}

TEST_F(ObsTest, JsonEscape) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
  EXPECT_EQ(obs::json_escape(std::string("\x01", 1)), "\\u0001");
}

// Golden test: the JSON renderer's exact output on a hand-built snapshot.
TEST_F(ObsTest, RenderJsonGolden) {
  obs::Snapshot snap;
  snap.counters[static_cast<std::size_t>(obs::Counter::StatesGenerated)] = 2;
  snap.gauges[static_cast<std::size_t>(obs::Gauge::PeakGraphStates)] = 7;
  snap.spans.push_back({"explore", 1, 0, 1, 100, 50});

  std::string zeros = "0";
  for (std::size_t i = 1; i < obs::kHistBuckets; ++i) zeros += ", 0";
  const std::string empty_hist =
      "{\"buckets\": [" + zeros + "], \"sum\": 0, \"count\": 0}";
  const std::string empty_mem_domain =
      "{\"live_bytes\": 0, \"peak_bytes\": 0, \"allocs\": 0, \"alloc_size\": " +
      empty_hist + "}";

  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"states_generated\": 2,\n"
      "    \"successors_enumerated\": 0,\n"
      "    \"enabled_evaluations\": 0,\n"
      "    \"configs_expanded\": 0,\n"
      "    \"scc_passes\": 0,\n"
      "    \"lasso_candidates\": 0,\n"
      "    \"inclusion_pairs\": 0,\n"
      "    \"product_nodes\": 0,\n"
      "    \"product_steps\": 0,\n"
      "    \"freeze_steps\": 0,\n"
      "    \"refinement_edges_checked\": 0,\n"
      "    \"oracle_evaluations\": 0,\n"
      "    \"behaviors_checked\": 0,\n"
      "    \"par_states_expanded\": 0,\n"
      "    \"par_steals\": 0,\n"
      "    \"par_shard_contention\": 0,\n"
      "    \"completions_pruned\": 0,\n"
      "    \"residual_early_cuts\": 0,\n"
      "    \"analysis_pairs_independent\": 0,\n"
      "    \"analysis_pairs_dependent\": 0,\n"
      "    \"budget_stops\": 0,\n"
      "    \"vm_programs_compiled\": 0,\n"
      "    \"vm_instrs_executed\": 0\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"peak_configuration_count\": 0,\n"
      "    \"peak_graph_states\": 7,\n"
      "    \"peak_product_nodes\": 0,\n"
      "    \"peak_par_workers\": 0,\n"
      "    \"peak_rss_bytes\": 0\n"
      "  },\n"
      "  \"levels\": {\n"
      "    \"frontier_size\": 0\n"
      "  },\n"
      "  \"labeled\": {\n"
      "    \"action_fired\": {},\n"
      "    \"action_enabled\": {}\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"successor_fanout\": " + empty_hist + ",\n"
      "    \"par_worker_expansions\": " + empty_hist + ",\n"
      "    \"shard_probe_length\": " + empty_hist + ",\n"
      "    \"lasso_walk_length\": " + empty_hist + "\n"
      "  },\n"
      "  \"memory\": {\n"
      "    \"domains\": {\n"
      "      \"state_store\": " + empty_mem_domain + ",\n"
      "      \"state_graph\": " + empty_mem_domain + ",\n"
      "      \"frontier\": " + empty_mem_domain + ",\n"
      "      \"vm_pools\": " + empty_mem_domain + ",\n"
      "      \"parser\": " + empty_mem_domain + ",\n"
      "      \"oracle\": " + empty_mem_domain + ",\n"
      "      \"other\": " + empty_mem_domain + "\n"
      "    },\n"
      "    \"tracked_live_bytes\": 0,\n"
      "    \"tracked_peak_bytes\": 0,\n"
      "    \"bytes_per_state\": 0\n"
      "  },\n"
      "  \"phases\": [],\n"
      "  \"spans_dropped\": 0,\n"
      "  \"spans\": [\n"
      "    {\"name\": \"explore\", \"id\": 1, \"parent\": 0, \"tid\": 1, "
      "\"ts_us\": 100, \"dur_us\": 50}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(obs::render_json(snap), expected);
}

// Golden test: the Chrome trace_event renderer. One metadata event, one
// "X" complete event per span, one "C" counter sample per nonzero counter
// stamped at the trace's last timestamp.
TEST_F(ObsTest, RenderChromeTraceGolden) {
  obs::Snapshot snap;
  snap.counters[static_cast<std::size_t>(obs::Counter::StatesGenerated)] = 2;
  snap.spans.push_back({"explore", 1, 0, 1, 100, 50});

  const std::string expected =
      "{\"traceEvents\": [\n"
      "  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
      "\"args\": {\"name\": \"opentla\"}},\n"
      "  {\"name\": \"explore\", \"cat\": \"opentla\", \"ph\": \"X\", "
      "\"ts\": 100, \"dur\": 50, \"pid\": 1, \"tid\": 1, "
      "\"args\": {\"id\": 1, \"parent\": 0}},\n"
      "  {\"name\": \"states_generated\", \"ph\": \"C\", \"ts\": 150, "
      "\"pid\": 1, \"args\": {\"value\": 2}}\n"
      "], \"displayTimeUnit\": \"ms\"}\n";
  EXPECT_EQ(obs::render_chrome_trace(snap), expected);
}

TEST_F(ObsTest, RenderHumanMentionsEveryCounter) {
  obs::Snapshot snap;
  snap.spans.push_back({"explore", 1, 0, 1, 100, 50});
  const std::string table = obs::render_human(snap);
  for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
    EXPECT_NE(table.find(obs::name(static_cast<obs::Counter>(i))),
              std::string::npos);
  }
  for (std::size_t i = 0; i < obs::kNumGauges; ++i) {
    EXPECT_NE(table.find(obs::name(static_cast<obs::Gauge>(i))),
              std::string::npos);
  }
  EXPECT_NE(table.find("explore"), std::string::npos);
}

TEST_F(ObsTest, WriteBenchJsonRoundTrips) {
  const std::filesystem::path prev = std::filesystem::current_path();
  std::filesystem::current_path(::testing::TempDir());
  obs::Snapshot snap;
  snap.counters[static_cast<std::size_t>(obs::Counter::StatesGenerated)] = 42;
  const std::string path = obs::write_bench_json("unit_test", snap);
  std::filesystem::current_path(prev);
  ASSERT_EQ(path, "BENCH_unit_test.json");

  std::ifstream in(std::filesystem::path(::testing::TempDir()) / path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string body = buf.str();
  EXPECT_NE(body.find("\"schema\": \"opentla-bench-v3\""), std::string::npos);
  EXPECT_NE(body.find("\"bench\": \"unit_test\""), std::string::npos);
  EXPECT_NE(body.find("\"states_generated\": 42"), std::string::npos);
  EXPECT_NE(body.find("\"peak_configuration_count\": 0"), std::string::npos);
  EXPECT_NE(body.find("\"labeled\""), std::string::npos);
  EXPECT_NE(body.find("\"histograms\""), std::string::npos);
  EXPECT_NE(body.find("\"successor_fanout\""), std::string::npos);
  EXPECT_NE(body.find("\"memory\""), std::string::npos);
  EXPECT_NE(body.find("\"state_store\""), std::string::npos);
  EXPECT_NE(body.find("\"tracked_peak_bytes\""), std::string::npos);
  EXPECT_NE(body.find("\"bytes_per_state\""), std::string::npos);
}

// The parallel engine's counters: a multi-threaded exploration reports its
// worker-pool width and expansion count, and — because the graph must be
// canonical — the *graph-shape* counters match a serial run of the same
// space exactly. Steal/contention counts are scheduling-dependent, so only
// their presence in the snapshot is asserted, not a value.
TEST_F(ObsTest, ParallelCountersAreRecordedAndGraphCountersMatchSerial) {
  if (!obs::compile_time_enabled()) {
    GTEST_SKIP() << "engine instrumentation compiled out (-DOPENTLA_OBS=OFF)";
  }
  VarTable vars;
  const VarId x = vars.declare("x", range_domain(0, 63));
  const Expr next =
      ex::lor(ex::land(ex::lt(ex::var(x), ex::integer(63)),
                       ex::eq(ex::primed_var(x), ex::add(ex::var(x), ex::integer(1)))),
              ex::land(ex::eq(ex::var(x), ex::integer(63)),
                       ex::eq(ex::primed_var(x), ex::integer(0))));
  ActionSuccessors gen(vars, next);
  const StateGraph::SuccessorFn succ =
      [&gen](const State& s, const std::function<void(const State&)>& emit) {
        gen.for_each_successor(s, emit);
      };
  const State init({Value::integer(0)});

  auto run = [&](unsigned threads) {
    obs::ScopedSink sink;
    ExploreOptions opts;
    opts.threads = threads;
    StateGraph g(vars, {init}, succ, opts);
    EXPECT_EQ(g.num_states(), 64u);
    return sink.take();
  };

  const obs::Snapshot serial = run(1);
  const obs::Snapshot parallel = run(4);

  // Serial exploration never touches the par.* instruments.
  EXPECT_EQ(serial.counter(obs::Counter::ParStatesExpanded), 0u);
  EXPECT_EQ(serial.counter(obs::Counter::ParSteals), 0u);
  EXPECT_EQ(serial.gauge(obs::Gauge::PeakParWorkers), 0u);

  // The parallel run expands every state exactly once and records its pool.
  EXPECT_EQ(parallel.counter(obs::Counter::ParStatesExpanded), 64u);
  EXPECT_EQ(parallel.gauge(obs::Gauge::PeakParWorkers), 4u);
  // Graph-shape counters are engine-independent.
  EXPECT_EQ(parallel.counter(obs::Counter::StatesGenerated),
            serial.counter(obs::Counter::StatesGenerated));
  EXPECT_EQ(parallel.counter(obs::Counter::SuccessorsEnumerated),
            serial.counter(obs::Counter::SuccessorsEnumerated));
}

// With the runtime flag off, every primitive the macros expand to must
// leave the registry untouched, and Span construction must not record.
TEST_F(ObsTest, RuntimeDisabledRecordsNothing) {
  ASSERT_FALSE(obs::enabled());
  OPENTLA_OBS_COUNT(StatesGenerated);
  OPENTLA_OBS_COUNT_N(ConfigsExpanded, 17);
  OPENTLA_OBS_GAUGE_MAX(PeakGraphStates, 99);
  OPENTLA_OBS_LEVEL_SET(FrontierSize, 42);
  OPENTLA_OBS_COUNT_LABELED(ActionFired, obs::kLabelOverflow, 3);
  OPENTLA_OBS_HIST(SuccessorFanout, 8);
  OPENTLA_OBS_PHASE("ignored_phase");
  { OPENTLA_OBS_SPAN("ignored"); }
  { obs::Span direct("also_ignored"); }
  const obs::Snapshot snap = obs::snapshot();
  for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
    EXPECT_EQ(snap.counters[i], 0u);
  }
  for (std::size_t i = 0; i < obs::kNumGauges; ++i) {
    EXPECT_EQ(snap.gauges[i], 0u);
  }
  for (std::size_t i = 0; i < obs::kNumLevels; ++i) {
    EXPECT_EQ(snap.levels[i], 0u);
  }
  for (std::size_t f = 0; f < obs::kNumLabeledCounters; ++f) {
    for (std::uint64_t v : snap.labeled[f]) EXPECT_EQ(v, 0u);
  }
  for (std::size_t h = 0; h < obs::kNumHistograms; ++h) {
    EXPECT_EQ(snap.hists[h].count, 0u);
  }
  EXPECT_TRUE(snap.phases.empty());
  EXPECT_TRUE(snap.spans.empty());
}

// --- obs v2: labeled counters, histograms, levels, phases, sampler, exports ---

// Regression for the ScopedSink gauge-leak bug: a peak recorded BEFORE the
// sink existed must not appear in the sink's snapshot; the sink reports
// only the high-water observed within its own scope.
TEST_F(ObsTest, ScopedSinkGaugeIsScopeLocal) {
  obs::set_enabled(true);
  obs::gauge_max(obs::Gauge::PeakGraphStates, 1000);  // stale, pre-scope peak
  {
    obs::ScopedSink outer;
    obs::gauge_max(obs::Gauge::PeakGraphStates, 7);
    {
      obs::ScopedSink inner;
      obs::gauge_max(obs::Gauge::PeakGraphStates, 3);
      EXPECT_EQ(inner.take().gauge(obs::Gauge::PeakGraphStates), 3u);
    }
    EXPECT_EQ(outer.take().gauge(obs::Gauge::PeakGraphStates), 7u);
    // A sink that saw no gauge update reports 0, not the global peak.
    obs::ScopedSink quiet;
    EXPECT_EQ(quiet.take().gauge(obs::Gauge::PeakGraphStates), 0u);
  }
  // The global registry still holds the process-lifetime high-water.
  EXPECT_EQ(obs::snapshot().gauge(obs::Gauge::PeakGraphStates), 1000u);
}

// The span-recording cap: spans past the cap are dropped and counted, and
// the Chrome trace renderer surfaces the count as a metadata event.
TEST_F(ObsTest, SpanCapDropsAndCountsOverflow) {
  obs::set_enabled(true);
  constexpr std::size_t kCap = std::size_t{1} << 17;  // kMaxSpans in obs.cpp
  constexpr std::size_t kOver = 5;
  for (std::size_t i = 0; i < kCap + kOver; ++i) {
    obs::Span s("bulk");
  }
  const obs::Snapshot snap = obs::snapshot();
  EXPECT_EQ(snap.spans.size(), kCap);
  EXPECT_EQ(snap.spans_dropped, kOver);
}

TEST_F(ObsTest, ChromeTraceSurfacesDroppedSpans) {
  obs::Snapshot snap;
  snap.spans.push_back({"explore", 1, 0, 1, 100, 50});
  snap.spans_dropped = 3;
  const std::string trace = obs::render_chrome_trace(snap);
  EXPECT_NE(trace.find("{\"name\": \"spans_dropped\", \"ph\": \"M\", \"pid\": 1, "
                       "\"args\": {\"value\": 3}}"),
            std::string::npos);
}

// Schema-drift guard: every enum value of every instrument family has a
// unique, non-empty name that appears in render_json output.
TEST_F(ObsTest, RendererNamesAreUniqueAndPresentInJson) {
  const std::string json = obs::render_json(obs::Snapshot{});
  std::set<std::string> seen;
  auto check = [&](const char* n) {
    ASSERT_NE(n, nullptr);
    const std::string s = n;
    EXPECT_FALSE(s.empty());
    EXPECT_NE(s, "?");
    EXPECT_TRUE(seen.insert(s).second) << "duplicate metric name " << s;
    EXPECT_NE(json.find("\"" + s + "\""), std::string::npos) << s;
  };
  for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
    check(obs::name(static_cast<obs::Counter>(i)));
  }
  for (std::size_t i = 0; i < obs::kNumGauges; ++i) {
    check(obs::name(static_cast<obs::Gauge>(i)));
  }
  for (std::size_t i = 0; i < obs::kNumLevels; ++i) {
    check(obs::name(static_cast<obs::Level>(i)));
  }
  for (std::size_t i = 0; i < obs::kNumLabeledCounters; ++i) {
    check(obs::name(static_cast<obs::LabeledCounter>(i)));
  }
  for (std::size_t i = 0; i < obs::kNumHistograms; ++i) {
    check(obs::name(static_cast<obs::Histogram>(i)));
  }
}

TEST_F(ObsTest, LabelInterningIsStableAndBounded) {
  obs::set_enabled(true);
  const obs::LabelId a = obs::intern_label("Incr");
  const obs::LabelId b = obs::intern_label("Wrap");
  EXPECT_NE(a, obs::kLabelOverflow);
  EXPECT_NE(b, obs::kLabelOverflow);
  EXPECT_NE(a, b);
  EXPECT_EQ(obs::intern_label("Incr"), a);  // idempotent

  obs::count_labeled(obs::LabeledCounter::ActionFired, a, 3);
  obs::count_labeled(obs::LabeledCounter::ActionFired, b, 1);
  obs::count_labeled(obs::LabeledCounter::ActionEnabled, a, 2);
  const obs::Snapshot snap = obs::snapshot();
  EXPECT_EQ(snap.labeled_value(obs::LabeledCounter::ActionFired, "Incr"), 3u);
  EXPECT_EQ(snap.labeled_value(obs::LabeledCounter::ActionFired, "Wrap"), 1u);
  EXPECT_EQ(snap.labeled_value(obs::LabeledCounter::ActionEnabled, "Incr"), 2u);
  EXPECT_EQ(snap.labeled_value(obs::LabeledCounter::ActionEnabled, "missing"), 0u);
  EXPECT_EQ(snap.labels[obs::kLabelOverflow], "_other");

  // Past the table bound, interning degrades to the overflow bucket
  // instead of growing without limit.
  for (std::size_t i = 0; i < obs::kMaxLabels + 8; ++i) {
    obs::intern_label("overflow_" + std::to_string(i));
  }
  EXPECT_EQ(obs::intern_label("one_more"), obs::kLabelOverflow);
  EXPECT_EQ(obs::snapshot().labels.size(), obs::kMaxLabels);
}

TEST_F(ObsTest, HistogramBucketsArePowersOfTwo) {
  // Bucket layout: le bounds 0, 1, 2, 4, 8, ...
  EXPECT_EQ(obs::hist_bucket_index(0), 0u);
  EXPECT_EQ(obs::hist_bucket_index(1), 1u);
  EXPECT_EQ(obs::hist_bucket_index(2), 2u);
  EXPECT_EQ(obs::hist_bucket_index(3), 3u);
  EXPECT_EQ(obs::hist_bucket_index(4), 3u);
  EXPECT_EQ(obs::hist_bucket_index(5), 4u);
  EXPECT_EQ(obs::hist_bucket_index(8), 4u);
  EXPECT_EQ(obs::hist_bucket_index(9), 5u);
  EXPECT_EQ(obs::hist_bucket_le(0), 0u);
  EXPECT_EQ(obs::hist_bucket_le(1), 1u);
  EXPECT_EQ(obs::hist_bucket_le(3), 4u);
  // Everything saturates into the final bucket.
  EXPECT_EQ(obs::hist_bucket_index(~std::uint64_t{0}), obs::kHistBuckets - 1);

  obs::set_enabled(true);
  for (std::uint64_t v : {0u, 1u, 2u, 3u, 4u, 5u, 100u}) {
    obs::hist_observe(obs::Histogram::SuccessorFanout, v);
  }
  const obs::Snapshot snap = obs::snapshot();
  const obs::HistogramSnapshot& h = snap.hist(obs::Histogram::SuccessorFanout);
  EXPECT_EQ(h.count, 7u);
  EXPECT_EQ(h.sum, 115u);
  EXPECT_EQ(h.buckets[0], 1u);  // 0
  EXPECT_EQ(h.buckets[1], 1u);  // 1
  EXPECT_EQ(h.buckets[2], 1u);  // 2
  EXPECT_EQ(h.buckets[3], 2u);  // 3, 4
  EXPECT_EQ(h.buckets[4], 1u);  // 5
  EXPECT_EQ(h.buckets[8], 1u);  // 100 in (64,128]
}

TEST_F(ObsTest, PhaseEventsRecordAndForwardToSink) {
  if (!obs::compile_time_enabled()) {
    GTEST_SKIP() << "OPENTLA_OBS_PHASE compiled out (-DOPENTLA_OBS=OFF)";
  }
  obs::set_enabled(true);
  std::vector<std::string> forwarded;
  obs::set_phase_sink([&](const obs::PhaseEvent& e) { forwarded.push_back(e.phase); });
  obs::ScopedSink sink;
  OPENTLA_OBS_PHASE("fig9:1");
  OPENTLA_OBS_PHASE(std::string("fig9:2.") + "1");
  obs::set_phase_sink(nullptr);
  OPENTLA_OBS_PHASE("after_clear");

  const obs::Snapshot snap = sink.take();
  ASSERT_EQ(snap.phases.size(), 3u);
  EXPECT_EQ(snap.phases[0].phase, "fig9:1");
  EXPECT_EQ(snap.phases[1].phase, "fig9:2.1");
  EXPECT_LE(snap.phases[0].ts_us, snap.phases[1].ts_us);
  ASSERT_EQ(forwarded.size(), 2u);  // sink cleared before the third event
  EXPECT_EQ(forwarded[1], "fig9:2.1");
}

TEST_F(ObsTest, ScopedSinkDeltasLabeledHistogramsAndPhases) {
  obs::set_enabled(true);
  const obs::LabelId incr = obs::intern_label("Incr");
  obs::count_labeled(obs::LabeledCounter::ActionFired, incr, 10);
  obs::hist_observe(obs::Histogram::SuccessorFanout, 4);
  obs::phase_event("before");
  {
    obs::ScopedSink sink;
    obs::count_labeled(obs::LabeledCounter::ActionFired, incr, 5);
    obs::hist_observe(obs::Histogram::SuccessorFanout, 4);
    obs::hist_observe(obs::Histogram::SuccessorFanout, 7);
    obs::phase_event("inside");
    const obs::Snapshot snap = sink.take();
    EXPECT_EQ(snap.labeled_value(obs::LabeledCounter::ActionFired, "Incr"), 5u);
    const obs::HistogramSnapshot& h = snap.hist(obs::Histogram::SuccessorFanout);
    EXPECT_EQ(h.count, 2u);
    EXPECT_EQ(h.sum, 11u);
    ASSERT_EQ(snap.phases.size(), 1u);
    EXPECT_EQ(snap.phases[0].phase, "inside");
  }
  EXPECT_EQ(obs::snapshot().labeled_value(obs::LabeledCounter::ActionFired, "Incr"),
            15u);
}

// Serial exploration records the fanout histogram; the same space explored
// in parallel produces the identical histogram (same canonical graph).
TEST_F(ObsTest, FanoutHistogramIsEngineIndependent) {
  if (!obs::compile_time_enabled()) {
    GTEST_SKIP() << "engine instrumentation compiled out (-DOPENTLA_OBS=OFF)";
  }
  VarTable vars;
  const VarId x = vars.declare("x", range_domain(0, 31));
  const Expr next =
      ex::lor(ex::land(ex::lt(ex::var(x), ex::integer(31)),
                       ex::eq(ex::primed_var(x), ex::add(ex::var(x), ex::integer(1)))),
              ex::land(ex::eq(ex::var(x), ex::integer(31)),
                       ex::eq(ex::primed_var(x), ex::integer(0))));
  ActionSuccessors gen(vars, next);
  const StateGraph::SuccessorFn succ =
      [&gen](const State& s, const std::function<void(const State&)>& emit) {
        gen.for_each_successor(s, emit);
      };
  auto run = [&](unsigned threads) {
    obs::ScopedSink sink;
    ExploreOptions opts;
    opts.threads = threads;
    StateGraph g(vars, {State({Value::integer(0)})}, succ, opts);
    EXPECT_EQ(g.num_states(), 32u);
    return sink.take();
  };
  const obs::Snapshot serial = run(1);
  const obs::Snapshot parallel = run(4);
  const obs::HistogramSnapshot& hs = serial.hist(obs::Histogram::SuccessorFanout);
  const obs::HistogramSnapshot& hp = parallel.hist(obs::Histogram::SuccessorFanout);
  EXPECT_EQ(hs.count, 32u);
  EXPECT_EQ(hs.buckets, hp.buckets);
  EXPECT_EQ(hs.sum, hp.sum);
  // The parallel run also samples one expansion count per worker.
  EXPECT_EQ(parallel.hist(obs::Histogram::ParWorkerExpansions).count, 4u);
  EXPECT_EQ(parallel.hist(obs::Histogram::ParWorkerExpansions).sum, 32u);
  EXPECT_EQ(serial.hist(obs::Histogram::ParWorkerExpansions).count, 0u);
}

// The sampler's delivery guarantee: one start sample, one final sample,
// in seq order on one logical stream — even when stopped immediately.
TEST_F(ObsTest, ProgressSamplerEmitsStartAndFinalSamples) {
  obs::set_enabled(true);
  std::vector<obs::ProgressSample> samples;
  {
    obs::ProgressSampler sampler(std::chrono::milliseconds(10'000),
                                 [&](const obs::ProgressSample& s) {
                                   samples.push_back(s);
                                 });
    obs::count(obs::Counter::StatesGenerated, 123);
    obs::level_set(obs::Level::FrontierSize, 9);
  }  // dtor stops and emits the final sample
  ASSERT_GE(samples.size(), 2u);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].seq, i);
    if (i > 0) {
      EXPECT_GE(samples[i].ts_us, samples[i - 1].ts_us);
    }
  }
  EXPECT_FALSE(samples.front().final_sample);
  EXPECT_TRUE(samples.back().final_sample);
  EXPECT_EQ(samples.front().states, 0u);
  EXPECT_EQ(samples.back().states, 123u);
  EXPECT_EQ(samples.back().frontier, 9u);
}

// With a short period the background thread emits periodic samples
// between start and final.
TEST_F(ObsTest, ProgressSamplerEmitsPeriodicSamples) {
  obs::set_enabled(true);
  std::vector<obs::ProgressSample> samples;
  {
    obs::ProgressSampler sampler(
        std::chrono::milliseconds(5),
        [&](const obs::ProgressSample& s) { samples.push_back(s); });
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }
  EXPECT_GE(samples.size(), 3u);  // start + >=1 periodic + final
  EXPECT_GT(obs::read_rss_bytes(), 0u);  // /proc/self/statm is readable here
}

TEST_F(ObsTest, RenderOpenMetricsExposition) {
  obs::set_enabled(true);
  obs::count(obs::Counter::StatesGenerated, 42);
  obs::gauge_max(obs::Gauge::PeakGraphStates, 7);
  obs::level_set(obs::Level::FrontierSize, 3);
  const obs::LabelId incr = obs::intern_label("In\"cr");
  obs::count_labeled(obs::LabeledCounter::ActionFired, incr, 5);
  obs::hist_observe(obs::Histogram::SuccessorFanout, 0);
  obs::hist_observe(obs::Histogram::SuccessorFanout, 3);
  const std::string text = obs::render_openmetrics(obs::snapshot());

  EXPECT_NE(text.find("# TYPE opentla_states_generated counter\n"
                      "opentla_states_generated_total 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("opentla_peak_graph_states 7\n"), std::string::npos);
  EXPECT_NE(text.find("opentla_frontier_size 3\n"), std::string::npos);
  // Label values are escaped per the OpenMetrics ABNF.
  EXPECT_NE(text.find("opentla_action_fired_total{action=\"In\\\"cr\"} 5\n"),
            std::string::npos);
  // Histogram buckets are cumulative and end at +Inf = count.
  EXPECT_NE(text.find("opentla_successor_fanout_bucket{le=\"0\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("opentla_successor_fanout_bucket{le=\"4\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("opentla_successor_fanout_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("opentla_successor_fanout_sum 3\n"), std::string::npos);
  EXPECT_NE(text.find("opentla_successor_fanout_count 2\n"), std::string::npos);
  // The exposition terminates with the required EOF marker.
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST_F(ObsTest, JsonlWriterAppendsOneEventPerLine) {
  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / "obs_events_test.jsonl";
  std::filesystem::remove(path);
  {
    obs::JsonlWriter w(path.string());
    ASSERT_TRUE(w.ok());
    w.write_phase({"check.invariant", 17});
    obs::ProgressSample s;
    s.seq = 1;
    s.final_sample = true;
    s.ts_us = 99;
    s.states = 64;
    s.frontier = 2;
    s.states_per_sec = 1000.0;
    s.rss_bytes = 4096;
    s.tracked_bytes = 2048;
    s.bytes_per_state = 32;
    w.write_progress(s);
  }
  std::ifstream in(path);
  std::string line1, line2, extra;
  ASSERT_TRUE(std::getline(in, line1));
  ASSERT_TRUE(std::getline(in, line2));
  EXPECT_FALSE(std::getline(in, extra));
  EXPECT_EQ(line1, "{\"type\":\"phase\",\"phase\":\"check.invariant\",\"ts_us\":17}");
  EXPECT_EQ(line2,
            "{\"type\":\"progress\",\"seq\":1,\"final\":true,\"ts_us\":99,"
            "\"elapsed_us\":0,\"states\":64,\"frontier\":2,"
            "\"states_per_sec\":1000.0,\"rss_bytes\":4096,"
            "\"tracked_bytes\":2048,\"bytes_per_state\":32}");
  std::filesystem::remove(path);
}

// --- obs v4: memory accounting ---

// The statm parse is pure: resident *pages* times the page size, in bytes
// — pinning the unit here keeps every RSS consumer (progress samples,
// budget checks, ledger) in bytes, never pages.
TEST_F(ObsTest, StatmResidentBytesConvertsPagesToBytes) {
  EXPECT_EQ(obs::statm_resident_bytes("12345 678 90 1 0 2 0", 4096), 678u * 4096u);
  EXPECT_EQ(obs::statm_resident_bytes("12345 678", 16384), 678u * 16384u);
  EXPECT_EQ(obs::statm_resident_bytes("", 4096), 0u);
  EXPECT_EQ(obs::statm_resident_bytes("garbage", 4096), 0u);
  EXPECT_EQ(obs::statm_resident_bytes("42", 4096), 0u);  // no resident field
}

TEST_F(ObsTest, MemTallyChargesAndReleasesItsDomain) {
  obs::set_enabled(true);
  {
    obs::MemTally tally(obs::MemDomain::StateStore);
    tally.add(1000);
    tally.add(24);
    obs::Snapshot snap = obs::snapshot();
    const obs::MemDomainSnapshot& ms = snap.mem_domain(obs::MemDomain::StateStore);
    EXPECT_EQ(ms.live_bytes, 1024u);
    EXPECT_EQ(ms.peak_bytes, 1024u);
    EXPECT_EQ(ms.allocs, 2u);
    EXPECT_EQ(ms.alloc_size_sum, 1024u);
    EXPECT_EQ(snap.mem_tracked_live_bytes, 1024u);
    EXPECT_EQ(snap.mem_tracked_peak_bytes, 1024u);
  }
  // RAII release: live returns to zero, the peak stays.
  obs::Snapshot snap = obs::snapshot();
  EXPECT_EQ(snap.mem_domain(obs::MemDomain::StateStore).live_bytes, 0u);
  EXPECT_EQ(snap.mem_domain(obs::MemDomain::StateStore).peak_bytes, 1024u);
  EXPECT_EQ(snap.mem_tracked_live_bytes, 0u);
  EXPECT_EQ(snap.mem_tracked_peak_bytes, 1024u);
}

TEST_F(ObsTest, MemTallyCopyRechargesAndMoveTransfers) {
  obs::set_enabled(true);
  obs::MemTally a(obs::MemDomain::Oracle);
  a.add(100);
  obs::MemTally b = a;  // copy: the domain is charged a second time
  EXPECT_EQ(obs::snapshot().mem_domain(obs::MemDomain::Oracle).live_bytes, 200u);
  obs::MemTally c = std::move(a);  // move: no new charge
  EXPECT_EQ(obs::snapshot().mem_domain(obs::MemDomain::Oracle).live_bytes, 200u);
  c.release();
  b.release();
  EXPECT_EQ(obs::snapshot().mem_domain(obs::MemDomain::Oracle).live_bytes, 0u);
}

TEST_F(ObsTest, MemTallySetReplacesTheCharge) {
  obs::set_enabled(true);
  obs::MemTally tally(obs::MemDomain::StateGraph);
  tally.set(500);
  tally.set(300);  // shrink: live follows
  EXPECT_EQ(obs::snapshot().mem_domain(obs::MemDomain::StateGraph).live_bytes, 300u);
  tally.release();
}

TEST_F(ObsTest, MemAccountingIsNoOpWhenRuntimeDisabled) {
  // SetUp left collection off: charges must not land anywhere.
  {
    obs::MemTally tally(obs::MemDomain::StateStore);
    tally.add(4096);
    EXPECT_EQ(tally.bytes(), 0u);
  }
  obs::Snapshot snap = obs::snapshot();
  EXPECT_EQ(snap.mem_domain(obs::MemDomain::StateStore).peak_bytes, 0u);
  EXPECT_EQ(snap.mem_tracked_peak_bytes, 0u);
}

TEST_F(ObsTest, MemAccountingSuspendGatesOnlyTheAccountingLayer) {
  // The overhead-benchmark sub-gate: while suspended, charges record
  // nothing even with collection on, and a tally that charged before
  // suspension still releases exactly what it charged.
  obs::set_enabled(true);
  obs::MemTally tally(obs::MemDomain::Oracle);
  tally.add(1000);
  obs::set_mem_accounting_suspended(true);
  EXPECT_TRUE(obs::mem_accounting_suspended());
  tally.add(5000);  // skipped: not recorded, not remembered
  EXPECT_EQ(tally.bytes(), 1000u);
  OPENTLA_OBS_COUNT(StatesGenerated);  // the rest of the obs layer stays live
  obs::set_mem_accounting_suspended(false);
  tally.release();
  obs::Snapshot snap = obs::snapshot();
  EXPECT_EQ(snap.mem_domain(obs::MemDomain::Oracle).peak_bytes, 1000u);
  EXPECT_EQ(snap.mem_domain(obs::MemDomain::Oracle).live_bytes, 0u);
  if (obs::compile_time_enabled()) {  // the macro is ((void)0) in OFF builds
    EXPECT_EQ(snap.counters[static_cast<std::size_t>(obs::Counter::StatesGenerated)], 1u);
  }
}

TEST_F(ObsTest, CountingAllocatorChargesContainerBlocks) {
  obs::set_enabled(true);
  {
    std::deque<int, obs::CountingAllocator<int>> q{
        obs::CountingAllocator<int>(obs::MemDomain::Frontier)};
    for (int i = 0; i < 1000; ++i) q.push_back(i);
    const obs::MemDomainSnapshot& ms =
        obs::snapshot().mem_domain(obs::MemDomain::Frontier);
    EXPECT_GE(ms.live_bytes, 1000u * sizeof(int));
    EXPECT_GT(ms.allocs, 0u);
  }
  EXPECT_EQ(obs::snapshot().mem_domain(obs::MemDomain::Frontier).live_bytes, 0u);
}

TEST_F(ObsTest, BytesPerStateDividesTrackedPeakByPeakStates) {
  obs::set_enabled(true);
  obs::MemTally tally(obs::MemDomain::StateStore);
  tally.add(7000);
  obs::gauge_max(obs::Gauge::PeakGraphStates, 70);
  EXPECT_EQ(obs::snapshot().bytes_per_state(), 100u);
  obs::Snapshot empty;
  EXPECT_EQ(empty.bytes_per_state(), 0u);  // no states: no division
  tally.release();
}

TEST_F(ObsTest, OpenMetricsCarriesMemorySeries) {
  obs::set_enabled(true);
  obs::MemTally tally(obs::MemDomain::StateStore);
  tally.add(2048);
  obs::gauge_max(obs::Gauge::PeakGraphStates, 2);
  const std::string text = obs::render_openmetrics(obs::snapshot());
  EXPECT_NE(text.find("opentla_mem_live_bytes{domain=\"state_store\"} 2048\n"),
            std::string::npos);
  EXPECT_NE(text.find("opentla_mem_peak_bytes{domain=\"state_store\"} 2048\n"),
            std::string::npos);
  EXPECT_NE(text.find("opentla_mem_tracked_peak_bytes 2048\n"), std::string::npos);
  EXPECT_NE(text.find("opentla_bytes_per_state 1024\n"), std::string::npos);
  tally.release();
}

// Exploring a real space fills the instrumented domains, and the
// per-domain attribution sums to the tracked total (both maintained by
// the same alloc/free calls, so this is an internal-consistency pin).
TEST_F(ObsTest, ExplorationPopulatesMemoryDomains) {
  if (!obs::compile_time_enabled()) {
    GTEST_SKIP() << "engine instrumentation compiled out (-DOPENTLA_OBS=OFF)";
  }
  obs::set_enabled(true);
  VarTable vars;
  const VarId x = vars.declare("x", range_domain(0, 63));
  const Expr next =
      ex::lor(ex::land(ex::lt(ex::var(x), ex::integer(63)),
                       ex::eq(ex::primed_var(x), ex::add(ex::var(x), ex::integer(1)))),
              ex::land(ex::eq(ex::var(x), ex::integer(63)),
                       ex::eq(ex::primed_var(x), ex::integer(0))));
  ActionSuccessors gen(vars, next);
  const StateGraph::SuccessorFn succ =
      [&gen](const State& s, const std::function<void(const State&)>& emit) {
        gen.for_each_successor(s, emit);
      };
  StateGraph g(vars, {State({Value::integer(0)})}, succ);
  obs::Snapshot snap = obs::snapshot();
  EXPECT_GT(snap.mem_domain(obs::MemDomain::StateStore).live_bytes, 0u);
  EXPECT_GT(snap.mem_domain(obs::MemDomain::StateGraph).live_bytes, 0u);
  EXPECT_GT(snap.mem_domain(obs::MemDomain::Frontier).peak_bytes, 0u);
  EXPECT_GT(snap.mem_domain(obs::MemDomain::VmPools).live_bytes, 0u);
  std::uint64_t domain_live = 0;
  for (std::size_t d = 0; d < obs::kNumMemDomains; ++d) {
    domain_live += snap.mem[d].live_bytes;
  }
  EXPECT_EQ(domain_live, snap.mem_tracked_live_bytes);
  EXPECT_GT(snap.bytes_per_state(), 0u);
}

// --- obs v4: sampling profiler ---

TEST_F(ObsTest, RenderFoldedEmitsOneLinePerStack) {
  const std::vector<obs::FoldedStack> stacks = {{"a;b", 3}, {"a", 7}};
  EXPECT_EQ(obs::render_folded(stacks), "a;b 3\na 7\n");
}

TEST_F(ObsTest, FoldedFromSpansBuildsAncestorChains) {
  obs::Snapshot snap;
  // explore (100..150) with child intern (110..130): self 30 vs 20.
  snap.spans.push_back({"explore", 1, 0, 1, 100, 50});
  snap.spans.push_back({"intern", 2, 1, 1, 110, 20});
  const std::vector<obs::FoldedStack> stacks = obs::folded_from_spans(snap);
  ASSERT_EQ(stacks.size(), 2u);
  EXPECT_EQ(stacks[0].stack, "explore");
  EXPECT_EQ(stacks[0].count, 30u);
  EXPECT_EQ(stacks[1].stack, "explore;intern");
  EXPECT_EQ(stacks[1].count, 20u);
}

TEST_F(ObsTest, FoldedFromSpansFallsBackToOccurrenceCounts) {
  obs::Snapshot snap;
  snap.spans.push_back({"instant", 1, 0, 1, 100, 0});  // 0 us self time
  const std::vector<obs::FoldedStack> stacks = obs::folded_from_spans(snap);
  ASSERT_EQ(stacks.size(), 1u);
  EXPECT_EQ(stacks[0].stack, "instant");
  EXPECT_EQ(stacks[0].count, 1u);  // renders even when all spans round to 0
}

TEST_F(ObsTest, ProfileRowsSortBySelfTimeAndClampChildren) {
  obs::Snapshot snap;
  snap.spans.push_back({"outer", 1, 0, 1, 0, 100});
  snap.spans.push_back({"inner", 2, 1, 1, 10, 80});
  snap.spans.push_back({"inner", 3, 1, 1, 200, 5});  // second call, parent outer
  const std::vector<obs::ProfileRow> rows = obs::profile_rows(snap);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "inner");
  EXPECT_EQ(rows[0].count, 2u);
  EXPECT_EQ(rows[0].total_us, 85u);
  EXPECT_EQ(rows[0].self_us, 85u);
  EXPECT_EQ(rows[1].name, "outer");
  EXPECT_EQ(rows[1].total_us, 100u);
  EXPECT_EQ(rows[1].self_us, 15u);  // 100 - (80 + 5)
  const std::string table = obs::render_profile_table(rows, 1);
  EXPECT_NE(table.find("profile (top 1 spans by self time)"), std::string::npos);
  EXPECT_NE(table.find("inner"), std::string::npos);
  EXPECT_EQ(table.find("outer"), std::string::npos);  // cut by top_n
}

TEST_F(ObsTest, SamplingProfilerObservesOpenSpans) {
  if (!obs::compile_time_enabled()) {
    GTEST_SKIP() << "span instrumentation compiled out (-DOPENTLA_OBS=OFF)";
  }
  obs::set_enabled(true);
  obs::SamplingProfiler profiler(1000.0);
  {
    OPENTLA_OBS_SPAN("profiled.work");
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  profiler.stop();
  EXPECT_GT(profiler.samples(), 0u);
  const std::vector<obs::FoldedStack> stacks = profiler.folded();
  bool saw = false;
  for (const obs::FoldedStack& s : stacks) {
    if (s.stack.find("profiled.work") != std::string::npos) saw = true;
  }
  EXPECT_TRUE(saw) << "sampler never observed the 30ms span";
}

TEST_F(ObsTest, SamplingProfilerStopIsIdempotent) {
  obs::set_enabled(true);
  obs::SamplingProfiler profiler(100.0);
  profiler.stop();
  profiler.stop();
  EXPECT_GE(profiler.samples(), 1u);  // the final stop-time sample
}

}  // namespace
}  // namespace opentla
