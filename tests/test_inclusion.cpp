// Unit tests for the product explorer behind hypotheses H1/H2a
// (opentla/check/inclusion): constraint products, hidden-source movers,
// counterexample traces, and freeze-machine interplay.

#include <gtest/gtest.h>

#include "opentla/automata/freeze.hpp"
#include "opentla/ag/freeze_spec.hpp"
#include "opentla/check/inclusion.hpp"

namespace opentla {
namespace {

class InclusionTest : public ::testing::Test {
 protected:
  InclusionTest() {
    x = vars.declare("x", range_domain(0, 2));
    y = vars.declare("y", range_domain(0, 2));
  }

  CanonicalSpec stepper(VarId v, std::string name) {
    // v counts up to 2 and stays.
    CanonicalSpec s;
    s.name = std::move(name);
    s.init = ex::eq(ex::var(v), ex::integer(0));
    s.next = ex::land(ex::lt(ex::var(v), ex::integer(2)),
                      ex::eq(ex::primed_var(v), ex::add(ex::var(v), ex::integer(1))));
    s.sub = {v};
    return s;
  }

  CanonicalSpec bound(VarId v, std::int64_t max, std::string name) {
    // v never exceeds max (a pure safety target).
    CanonicalSpec s;
    s.name = std::move(name);
    s.init = ex::le(ex::var(v), ex::integer(max));
    s.next = ex::le(ex::primed_var(v), ex::integer(max));
    s.sub = {v};
    return s;
  }

  VarTable vars;
  VarId x = 0, y = 0;
};

TEST_F(InclusionTest, HoldsForImpliedBound) {
  CanonicalSpec sx = stepper(x, "SX");
  std::vector<std::shared_ptr<const SafetyMachine>> constraints = {
      std::make_shared<PrefixMachine>(vars, sx)};
  std::vector<Mover> movers = {mover_from_spec(vars, sx, 0, {y})};
  ConstraintExplorer explorer(vars, constraints, movers, sx.init, {y});
  PrefixMachine target(vars, bound(x, 2, "Bound2"));
  EXPECT_TRUE(explorer.check_target(target).holds);
  EXPECT_GE(explorer.num_nodes(), 3u);
}

TEST_F(InclusionTest, FailsForTighterBoundWithTrace) {
  CanonicalSpec sx = stepper(x, "SX");
  std::vector<std::shared_ptr<const SafetyMachine>> constraints = {
      std::make_shared<PrefixMachine>(vars, sx)};
  std::vector<Mover> movers = {mover_from_spec(vars, sx, 0, {y})};
  ConstraintExplorer explorer(vars, constraints, movers, sx.init, {y});
  PrefixMachine target(vars, bound(x, 1, "Bound1"));
  ConstraintExplorer::Verdict v = explorer.check_target(target);
  EXPECT_FALSE(v.holds);
  // The shortest violating trace reaches x = 2 in three states.
  ASSERT_EQ(v.counterexample.size(), 3u);
  EXPECT_EQ(v.counterexample.back()[x].as_int(), 2);
}

TEST_F(InclusionTest, MultipleTargetsShareOneExploration) {
  CanonicalSpec sx = stepper(x, "SX");
  std::vector<std::shared_ptr<const SafetyMachine>> constraints = {
      std::make_shared<PrefixMachine>(vars, sx)};
  std::vector<Mover> movers = {mover_from_spec(vars, sx, 0, {y})};
  ConstraintExplorer explorer(vars, constraints, movers, sx.init, {y});
  PrefixMachine t1(vars, bound(x, 2, "B2"));
  PrefixMachine t2(vars, bound(x, 0, "B0"));
  EXPECT_TRUE(explorer.check_target(t1).holds);
  EXPECT_FALSE(explorer.check_target(t2).holds);
}

TEST_F(InclusionTest, HiddenSourceMoversUseMachineConfigs) {
  // A component whose moves depend on its *hidden* progress: h ticks
  // invisibly, and x may rise only when h = 2. The mover must draw h from
  // the machine configuration or it would never generate the x-step.
  VarTable v2;
  VarId xv = v2.declare("x", range_domain(0, 1));
  VarId h = v2.declare("h", range_domain(0, 2));
  CanonicalSpec s;
  s.name = "HiddenGate";
  s.init = ex::land(ex::eq(ex::var(xv), ex::integer(0)),
                    ex::eq(ex::var(h), ex::integer(0)));
  Expr tick = ex::land(ex::lt(ex::var(h), ex::integer(2)),
                       ex::eq(ex::primed_var(h), ex::add(ex::var(h), ex::integer(1))),
                       ex::unchanged({xv}));
  Expr fire = ex::land(ex::eq(ex::var(h), ex::integer(2)),
                       ex::eq(ex::primed_var(xv), ex::integer(1)), ex::unchanged({h}));
  s.next = ex::lor(tick, fire);
  s.sub = {xv, h};
  s.hidden = {h};

  std::vector<std::shared_ptr<const SafetyMachine>> constraints = {
      std::make_shared<PrefixMachine>(v2, s)};
  std::vector<Mover> movers = {mover_from_spec(v2, s, 0, s.hidden)};
  ConstraintExplorer explorer(v2, constraints, movers, s.init, s.hidden);
  // Reachability of x = 1 requires the hidden ticks: the target "x stays 0"
  // must FAIL.
  CanonicalSpec x_zero;
  x_zero.name = "XZero";
  x_zero.init = ex::eq(ex::var(xv), ex::integer(0));
  x_zero.next = ex::eq(ex::primed_var(xv), ex::integer(0));
  x_zero.sub = {xv};
  PrefixMachine target(v2, x_zero);
  ConstraintExplorer::Verdict verdict = explorer.check_target(target);
  EXPECT_FALSE(verdict.holds);
}

TEST_F(InclusionTest, FreezeMachineConstraintAllowsPostViolationStutter) {
  // Constraint: freeze("x stays 0") on <<x>>. Behaviors may break the spec
  // once, after which x is frozen; a target "x <= 1" then still holds if
  // movers can only set x to 1.
  CanonicalSpec x_zero;
  x_zero.name = "XZero";
  x_zero.init = ex::eq(ex::var(x), ex::integer(0));
  x_zero.next = ex::bottom();
  x_zero.sub = {x};
  auto inner = std::make_shared<PrefixMachine>(vars, x_zero);
  std::vector<std::shared_ptr<const SafetyMachine>> constraints = {
      std::make_shared<FreezeMachine>(inner, std::vector<VarId>{x})};
  // Mover: set x to 1 (violating XZero).
  CanonicalSpec setter;
  setter.name = "Set1";
  setter.init = ex::eq(ex::var(x), ex::integer(0));
  setter.next = ex::eq(ex::primed_var(x), ex::integer(1));
  setter.sub = {x};
  std::vector<Mover> movers = {mover_from_spec(vars, setter, -1, {y})};
  ConstraintExplorer explorer(vars, constraints, movers, x_zero.init, {y});
  PrefixMachine ok(vars, bound(x, 1, "Bound1"));
  EXPECT_TRUE(explorer.check_target(ok).holds);
  // But after the violation x is frozen at 1: "x stays 0 forever" fails,
  // while "x never reaches 2" holds because the freeze blocks any further
  // change.
  PrefixMachine never2(vars, bound(x, 1, "Never2"));
  EXPECT_TRUE(explorer.check_target(never2).holds);
}

TEST_F(InclusionTest, FreezeMachineAgreesWithExplicitFreezeSpec) {
  // Two realizations of C(E)_{+v} — the semantic FreezeMachine transform
  // and the explicit canonical form with a hidden "abandoned" flag
  // (ag/freeze_spec) — must give identical verdicts as explorer
  // constraints.
  VarTable v2;
  VarId xv = v2.declare("x", range_domain(0, 2));
  VarId flag = v2.declare("__b", bool_domain());

  CanonicalSpec e;  // E: x stays 0
  e.name = "XZero";
  e.init = ex::eq(ex::var(xv), ex::integer(0));
  e.next = ex::bottom();
  e.sub = {xv};

  CanonicalSpec stepper;  // mover: x counts up
  stepper.name = "Step";
  stepper.init = e.init;
  stepper.next = ex::land(ex::lt(ex::var(xv), ex::integer(2)),
                          ex::eq(ex::primed_var(xv), ex::add(ex::var(xv), ex::integer(1))));
  stepper.sub = {xv};

  auto verdicts = [&](std::shared_ptr<const SafetyMachine> freeze_constraint) {
    std::vector<std::shared_ptr<const SafetyMachine>> constraints = {
        std::move(freeze_constraint)};
    std::vector<Mover> movers = {mover_from_spec(v2, stepper, -1, {flag})};
    ConstraintExplorer explorer(v2, constraints, movers, e.init, {flag});
    std::vector<bool> out;
    for (std::int64_t bound : {0, 1, 2}) {
      CanonicalSpec target;
      target.name = "Bound" + std::to_string(bound);
      target.init = ex::le(ex::var(xv), ex::integer(bound));
      target.next = ex::le(ex::primed_var(xv), ex::integer(bound));
      target.sub = {xv};
      PrefixMachine m(v2, target);
      out.push_back(explorer.check_target(m).holds);
    }
    return out;
  };

  auto semantic = verdicts(std::make_shared<FreezeMachine>(
      std::make_shared<PrefixMachine>(v2, e), std::vector<VarId>{xv}));
  auto explicit_form =
      verdicts(std::make_shared<PrefixMachine>(v2, freeze_spec(e, {xv}, flag)));
  EXPECT_EQ(semantic, explicit_form);
  // The freeze constraint lets E be broken once (x reaches 1) and then
  // pins x: bound 0 fails, bounds 1 and 2 hold.
  EXPECT_EQ(semantic, (std::vector<bool>{false, true, true}));
}

TEST_F(InclusionTest, NodeLimitStopsGracefully) {
  CanonicalSpec sx = stepper(x, "SX");
  std::vector<std::shared_ptr<const SafetyMachine>> constraints = {
      std::make_shared<PrefixMachine>(vars, sx)};
  std::vector<Mover> movers = {mover_from_spec(vars, sx, 0, {y})};
  ConstraintExplorer explorer(vars, constraints, movers, sx.init, {y},
                              /*max_nodes=*/1);
  EXPECT_EQ(explorer.num_nodes(), 1u);
  EXPECT_EQ(explorer.stop_reason(), run::StopReason::kStateBudget);
  // A verdict computed on the capped product is marked partial.
  auto verdict = explorer.check_target(*constraints[0]);
  EXPECT_EQ(verdict.stop_reason, run::StopReason::kStateBudget);
}

}  // namespace
}  // namespace opentla
