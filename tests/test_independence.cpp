// Tests for the whole-spec dataflow layer (opentla/analysis): the interval
// abstract domain, per-disjunct read/write footprints, the static
// independence relation with provenance, and the unit extraction for
// parsed modules and explicit compositions. The differential harness
// (test_differential.cpp) brute-forces the soundness of claimed
// independence; these tests pin the exact footprints, verdicts, and
// naming the rest of the system depends on.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>

#include "opentla/analysis/footprint.hpp"
#include "opentla/analysis/independence.hpp"
#include "opentla/analysis/interval.hpp"
#include "opentla/compose/compose.hpp"
#include "opentla/parser/parser.hpp"

namespace opentla {
namespace {

using analysis::AbsVal;
using analysis::AbstractEnv;
using analysis::Footprint;
using analysis::Interval;
using analysis::Truth;

// ---------------------------------------------------------------- interval

TEST(IntervalTest, MeetJoinAndEmptiness) {
  const Interval a{0, 5};
  const Interval b{3, 9};
  EXPECT_EQ(analysis::meet(a, b), (Interval{3, 5}));
  EXPECT_EQ(analysis::join(a, b), (Interval{0, 9}));
  EXPECT_TRUE(analysis::meet(Interval{0, 1}, Interval{3, 4}).empty());
  EXPECT_TRUE(Interval{}.empty());
  EXPECT_TRUE(Interval::singleton(7).is_singleton());
  EXPECT_TRUE(Interval::all().contains(std::numeric_limits<std::int64_t>::max()));
}

TEST(IntervalTest, SaturatingArithmetic) {
  EXPECT_EQ(analysis::interval_add(Interval{1, 2}, Interval{10, 20}), (Interval{11, 22}));
  EXPECT_EQ(analysis::interval_sub(Interval{0, 3}, Interval{1, 1}), (Interval{-1, 2}));
  EXPECT_EQ(analysis::interval_mul(Interval{-2, 3}, Interval{4, 5}), (Interval{-10, 15}));
  EXPECT_EQ(analysis::interval_neg(Interval{-3, 7}), (Interval{-7, 3}));
  // Saturation at the rails instead of UB/wraparound.
  const std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  const Interval big{kMax - 1, kMax};
  EXPECT_EQ(analysis::interval_add(big, big).hi, kMax);
  EXPECT_LE(analysis::interval_mul(big, big).hi, kMax);
}

TEST(IntervalTest, AbstractDomain) {
  const AbsVal ints = analysis::abstract_domain(range_domain(2, 6));
  EXPECT_EQ(ints.kind, AbsVal::Kind::Int);
  EXPECT_EQ(ints.iv, (Interval{2, 6}));
  const AbsVal bools = analysis::abstract_domain(bool_domain());
  EXPECT_EQ(bools.kind, AbsVal::Kind::Bool);
  EXPECT_TRUE(bools.may_true);
  EXPECT_TRUE(bools.may_false);
  EXPECT_TRUE(analysis::abstract_domain(Domain()).is_none());
  // A sequence-valued domain abstracts to Any, never to a wrong interval.
  EXPECT_EQ(analysis::abstract_domain(seq_domain(bit_domain(), 2)).kind, AbsVal::Kind::Any);
}

class AbsEvalTest : public ::testing::Test {
 protected:
  AbsEvalTest() {
    x_ = vars_.declare("x", range_domain(0, 3));
    y_ = vars_.declare("y", range_domain(0, 3));
    env_ = analysis::initial_env(vars_);
  }
  VarTable vars_;
  VarId x_ = 0, y_ = 0;
  AbstractEnv env_;
};

TEST_F(AbsEvalTest, ArithmeticFollowsIntervals) {
  const AbsVal sum = analysis::abs_eval(ex::add(ex::var(x_), ex::integer(2)), env_);
  EXPECT_EQ(sum.iv, (Interval{2, 5}));
  const AbsVal prod = analysis::abs_eval(ex::mul(ex::var(x_), ex::var(y_)), env_);
  EXPECT_EQ(prod.iv, (Interval{0, 9}));
  const AbsVal negated = analysis::abs_eval(ex::neg(ex::var(x_)), env_);
  EXPECT_EQ(negated.iv, (Interval{-3, 0}));
}

TEST_F(AbsEvalTest, ModWithPositiveDivisorBoundsResult) {
  const AbsVal m = analysis::abs_eval(ex::mod(ex::var(x_), ex::integer(4)), env_);
  EXPECT_EQ(m.kind, AbsVal::Kind::Int);
  // x already lies in [0, 4), so x % 4 keeps the exact interval.
  EXPECT_EQ(m.iv, (Interval{0, 3}));
  const AbsVal wide = analysis::abs_eval(
      ex::mod(ex::add(ex::var(x_), ex::var(y_)), ex::integer(4)), env_);
  EXPECT_EQ(wide.iv, (Interval{0, 3}));
}

TEST_F(AbsEvalTest, IfThenElseJoinsBranches) {
  const Expr e = ex::ite(ex::eq(ex::var(x_), ex::integer(0)), ex::integer(1), ex::integer(5));
  const AbsVal v = analysis::abs_eval(e, env_);
  EXPECT_EQ(v.kind, AbsVal::Kind::Int);
  EXPECT_EQ(v.iv, (Interval{1, 5}));
}

TEST_F(AbsEvalTest, TruthIsThreeValued) {
  EXPECT_EQ(analysis::abs_truth(ex::lt(ex::var(x_), ex::integer(10)), env_), Truth::True);
  EXPECT_EQ(analysis::abs_truth(ex::lt(ex::var(x_), ex::integer(0)), env_), Truth::False);
  EXPECT_EQ(analysis::abs_truth(ex::lt(ex::var(x_), ex::integer(2)), env_), Truth::Unknown);
}

TEST_F(AbsEvalTest, RefineByGuardsNarrowsAndDetectsUnsat) {
  AbstractEnv env = env_;
  ASSERT_TRUE(analysis::refine_by_guards(
      {ex::ge(ex::var(x_), ex::integer(1)), ex::lt(ex::var(x_), ex::integer(3))}, env));
  EXPECT_EQ(env[x_].iv, (Interval{1, 2}));
  // y untouched by the guards keeps its domain hull.
  EXPECT_EQ(env[y_].iv, (Interval{0, 3}));

  AbstractEnv unsat = env_;
  EXPECT_FALSE(analysis::refine_by_guards({ex::gt(ex::var(x_), ex::integer(5))}, unsat));
}

// --------------------------------------------------------------- footprint

class FootprintTest : public ::testing::Test {
 protected:
  FootprintTest() {
    x_ = vars_.declare("x", range_domain(0, 2));
    y_ = vars_.declare("y", range_domain(0, 2));
    z_ = vars_.declare("z", range_domain(0, 1));
    scope_ = vars_.all_vars();
  }
  VarTable vars_;
  VarId x_ = 0, y_ = 0, z_ = 0;
  std::vector<VarId> scope_;
};

TEST_F(FootprintTest, GuardsAssignmentsAndFramesClassified) {
  // y > 0 /\ x' = x + 1 /\ UNCHANGED <<y, z>>
  const Expr act = ex::land({ex::gt(ex::var(y_), ex::integer(0)),
                             ex::eq(ex::primed_var(x_), ex::add(ex::var(x_), ex::integer(1))),
                             ex::unchanged({y_, z_})});
  const Footprint fp = analysis::action_footprint(act, scope_);
  EXPECT_EQ(fp.reads, (std::vector<VarId>{x_, y_}));
  EXPECT_EQ(fp.writes, (std::vector<VarId>{x_}));  // identity frames are not writes
  EXPECT_EQ(fp.guard_reads, (std::vector<VarId>{y_}));
  EXPECT_FALSE(fp.conservative);
}

TEST_F(FootprintTest, UnmentionedInScopeVariableIsAWrite) {
  // No frame condition: z is in scope but unmentioned, so successor
  // generation enumerates it — a nondeterministic write.
  const Expr act = ex::land({ex::eq(ex::primed_var(x_), ex::integer(0)),
                             ex::eq(ex::primed_var(y_), ex::var(y_))});
  const Footprint fp = analysis::action_footprint(act, scope_);
  EXPECT_EQ(fp.writes, (std::vector<VarId>{x_, z_}));
  // With the scope restricted to {x, y} (an open module), z belongs to the
  // environment and is no write of this action.
  const Footprint open_fp = analysis::action_footprint(act, {x_, y_});
  EXPECT_EQ(open_fp.writes, (std::vector<VarId>{x_}));
}

TEST_F(FootprintTest, ResidualConstraintsReadAndWrite) {
  // x' != y' /\ z' <= z: all three primed variables are residual writes,
  // and z is read by the comparison.
  const Expr act = ex::land({ex::neq(ex::primed_var(x_), ex::primed_var(y_)),
                             ex::le(ex::primed_var(z_), ex::var(z_))});
  const Footprint fp = analysis::action_footprint(act, scope_);
  EXPECT_EQ(fp.writes, (std::vector<VarId>{x_, y_, z_}));
  EXPECT_EQ(fp.reads, (std::vector<VarId>{z_}));
}

TEST_F(FootprintTest, NullActionIsConservative) {
  const Footprint fp = analysis::action_footprint(Expr(), scope_);
  EXPECT_TRUE(fp.conservative);
}

TEST_F(FootprintTest, SyntacticWriteFootprintIgnoresScope) {
  const Expr act = ex::land({ex::eq(ex::primed_var(y_), ex::integer(1)),
                             ex::eq(ex::primed_var(x_), ex::var(x_))});
  // write_footprint: explicit non-frame assignments only — no frame-scope
  // completion (z unmentioned is NOT a write here; OTL006's contract).
  EXPECT_EQ(analysis::write_footprint(act), (std::vector<VarId>{y_}));
}

// ------------------------------------------------------------ independence

TEST_F(FootprintTest, PairVerdictsWithProvenance) {
  const Expr wx = ex::land({ex::eq(ex::primed_var(x_), ex::integer(1)), ex::unchanged({y_, z_})});
  const Expr wy = ex::land({ex::eq(ex::primed_var(y_), ex::integer(1)), ex::unchanged({x_, z_})});
  const Expr rx_wy = ex::land({ex::gt(ex::var(x_), ex::integer(0)),
                               ex::eq(ex::primed_var(y_), ex::integer(0)),
                               ex::unchanged({x_, z_})});
  const Footprint fwx = analysis::action_footprint(wx, scope_);
  const Footprint fwy = analysis::action_footprint(wy, scope_);
  const Footprint frx = analysis::action_footprint(rx_wy, scope_);

  const analysis::PairVerdict indep =
      analysis::pair_independence(vars_, "A", fwx, "B", fwy);
  EXPECT_TRUE(indep.independent);
  EXPECT_TRUE(indep.reason.empty());

  const analysis::PairVerdict ww = analysis::pair_independence(vars_, "A", fwy, "B", frx);
  EXPECT_FALSE(ww.independent);
  EXPECT_EQ(ww.reason, "both write 'y'");

  const analysis::PairVerdict wr = analysis::pair_independence(vars_, "A", fwx, "B", frx);
  EXPECT_FALSE(wr.independent);
  EXPECT_EQ(wr.reason, "'A' writes 'x', 'B' reads it in a guard");

  Footprint bad;
  bad.conservative = true;
  const analysis::PairVerdict cons = analysis::pair_independence(vars_, "A", bad, "B", fwy);
  EXPECT_FALSE(cons.independent);
  EXPECT_EQ(cons.reason, "conservative fallback: 'A' has no precise footprint");
}

TEST_F(FootprintTest, MatrixIsSymmetricDeterministicAndCounted) {
  auto unit = [&](std::string name, const Expr& act) {
    analysis::ActionUnit u;
    u.name = std::move(name);
    u.action = act;
    u.fp = analysis::action_footprint(act, scope_);
    return u;
  };
  const Expr wx = ex::land({ex::eq(ex::primed_var(x_), ex::integer(1)), ex::unchanged({y_, z_})});
  const Expr wy = ex::land({ex::eq(ex::primed_var(y_), ex::integer(1)), ex::unchanged({x_, z_})});
  const Expr wxy = ex::land({ex::eq(ex::primed_var(x_), ex::integer(0)),
                             ex::eq(ex::primed_var(y_), ex::integer(0)), ex::unchanged({z_})});
  std::vector<analysis::ActionUnit> units = {unit("WX", wx), unit("WY", wy), unit("WXY", wxy)};

  const analysis::IndependenceMatrix m = analysis::compute_independence(vars_, units);
  ASSERT_EQ(m.size(), 3u);
  for (std::size_t i = 0; i < m.size(); ++i) {
    for (std::size_t j = 0; j < m.size(); ++j) {
      EXPECT_EQ(m.independent(i, j), m.independent(j, i)) << i << "," << j;
    }
  }
  EXPECT_TRUE(m.independent(0, 1));
  EXPECT_FALSE(m.independent(0, 2));  // both write x
  EXPECT_FALSE(m.independent(1, 2));  // both write y
  EXPECT_EQ(m.reason(0, 1), "");
  EXPECT_EQ(m.reason(0, 2), "both write 'x'");
  EXPECT_EQ(m.independent_pairs(), 1u);
  EXPECT_EQ(m.dependent_pairs(), 2u);
  EXPECT_DOUBLE_EQ(m.density(), 1.0 / 3.0);

  // Determinism: a pure function of the unit list.
  const analysis::IndependenceMatrix m2 = analysis::compute_independence(vars_, units);
  ASSERT_EQ(m2.size(), m.size());
  for (std::size_t i = 0; i < m.size(); ++i) {
    for (std::size_t j = 0; j < m.size(); ++j) {
      EXPECT_EQ(m.independent(i, j), m2.independent(i, j));
      EXPECT_EQ(m.reason(i, j), m2.reason(i, j));
    }
  }
}

// ----------------------------------------------------------------- units

TEST(ActionUnitsTest, ModuleUnitsNamedAfterActions) {
  ParsedModule mod = parse_module(
      "MODULE M\n"
      "VARIABLES x \\in 0..3, y \\in 0..3\n"
      "INIT x = 0 /\\ y = 0\n"
      "ACTION IncX == x < 3 /\\ x' = x + 1 /\\ UNCHANGED y\n"
      "ACTION IncY == y < 3 /\\ y' = y + 1 /\\ UNCHANGED x\n"
      "NEXT IncX \\/ IncY\n");
  const std::vector<analysis::ActionUnit> units = analysis::module_action_units(mod);
  ASSERT_EQ(units.size(), 2u);
  EXPECT_EQ(units[0].name, "IncX");
  EXPECT_EQ(units[1].name, "IncY");
  EXPECT_EQ(units[0].module, "M");
  const analysis::IndependenceMatrix m =
      analysis::compute_independence(*mod.vars, units);
  EXPECT_TRUE(m.independent(0, 1));
}

TEST(ActionUnitsTest, OpenModuleScopeIsItsSubscript) {
  // An open module's subscript keeps environment variables out of its
  // write set even though the module never mentions them.
  auto universe = std::make_shared<VarTable>();
  ParsedModule mod = parse_module(
      "MODULE Open\n"
      "VARIABLES a \\in 0..1, env \\in 0..1\n"
      "INIT a = 0\n"
      "NEXT a' = 1 - a\n"
      "SUBSCRIPT <<a>>\n",
      universe);
  const std::vector<analysis::ActionUnit> units = analysis::module_action_units(mod);
  ASSERT_EQ(units.size(), 1u);
  const VarId env_var = 1;
  EXPECT_EQ(std::count(units[0].fp.writes.begin(), units[0].fp.writes.end(), env_var), 0);
}

TEST(ActionUnitsTest, CompositeUnitsMatchMoverLabels) {
  VarTable vars;
  const VarId a = vars.declare("a", bit_domain());
  const VarId b = vars.declare("b", bit_domain());
  CanonicalSpec sa;
  sa.name = "PartA";
  sa.init = ex::eq(ex::var(a), ex::integer(0));
  sa.next = ex::land({ex::eq(ex::primed_var(a), ex::sub(ex::integer(1), ex::var(a))),
                      ex::unchanged({b})});
  sa.sub = {a};
  CanonicalSpec sb;  // unnamed: labeled part_2 like build_composite_graph
  sb.init = ex::eq(ex::var(b), ex::integer(0));
  sb.next = ex::land({ex::eq(ex::primed_var(b), ex::sub(ex::integer(1), ex::var(b))),
                      ex::unchanged({a})});
  sb.sub = {b};
  const std::vector<CompositePart> parts = {{sa, true}, {sb, true}};

  const std::vector<analysis::ActionUnit> units =
      composite_action_units(vars, parts, {{a}}, {});
  ASSERT_EQ(units.size(), 3u);
  EXPECT_EQ(units[0].name, "PartA");
  EXPECT_EQ(units[1].name, "part_2");
  EXPECT_EQ(units[2].name, "free_1");
  // The free tuple writes a and reads nothing.
  EXPECT_EQ(units[2].fp.writes, (std::vector<VarId>{a}));
  EXPECT_TRUE(units[2].fp.reads.empty());
  const analysis::IndependenceMatrix m = analysis::compute_independence(vars, units);
  EXPECT_TRUE(m.independent(0, 1));
  EXPECT_FALSE(m.independent(0, 2));  // both can change a
}

}  // namespace
}  // namespace opentla
