// Unit tests for the orthogonality checker (opentla/check/orthogonality)
// and its agreement with Proposition 4 and the lasso oracle.

#include <gtest/gtest.h>

#include "opentla/ag/propositions.hpp"
#include "opentla/check/orthogonality.hpp"
#include "opentla/compose/compose.hpp"
#include "opentla/semantics/enumerate.hpp"
#include "opentla/semantics/oracle.hpp"
#include "opentla/tla/disjoint.hpp"

namespace opentla {
namespace {

class OrthogonalityTest : public ::testing::Test {
 protected:
  OrthogonalityTest() {
    x = vars.declare("x", range_domain(0, 1));
    y = vars.declare("y", range_domain(0, 1));
    ex_spec = stays_zero(x, "Ex");
    my_spec = stays_zero(y, "My");
  }

  CanonicalSpec stays_zero(VarId v, std::string name) {
    CanonicalSpec s;
    s.name = std::move(name);
    s.init = ex::eq(ex::var(v), ex::integer(0));
    s.next = ex::bottom();
    s.sub = {v};
    return s;
  }

  // A generator that moves x and y freely, one at a time (interleaved) or
  // together, depending on `interleaved`.
  StateGraph generator(bool interleaved) {
    CanonicalSpec frame;
    frame.name = "Frame";
    frame.init = ex::land(ex::eq(ex::var(x), ex::integer(0)),
                          ex::eq(ex::var(y), ex::integer(0)));
    frame.next = ex::top();
    frame.sub = {x, y};
    std::vector<CompositePart> parts = {{frame, false}};
    if (interleaved) parts.push_back({make_disjoint({{x}, {y}}), false});
    std::vector<std::vector<VarId>> free_tuples =
        interleaved ? std::vector<std::vector<VarId>>{{x}, {y}}
                    : std::vector<std::vector<VarId>>{{x, y}};
    return build_composite_graph(vars, parts, free_tuples);
  }

  VarTable vars;
  VarId x = 0, y = 0;
  CanonicalSpec ex_spec, my_spec;
};

TEST_F(OrthogonalityTest, InterleavedGeneratorIsOrthogonal) {
  StateGraph g = generator(/*interleaved=*/true);
  PrefixMachine e(vars, ex_spec);
  PrefixMachine m(vars, my_spec);
  OrthogonalityResult r = check_orthogonality(g, e, m);
  EXPECT_TRUE(r.holds);
  EXPECT_GT(r.pairs_visited, 0u);
}

TEST_F(OrthogonalityTest, SimultaneousMovesBreakOrthogonality) {
  StateGraph g = generator(/*interleaved=*/false);
  PrefixMachine e(vars, ex_spec);
  PrefixMachine m(vars, my_spec);
  OrthogonalityResult r = check_orthogonality(g, e, m);
  EXPECT_FALSE(r.holds);
  // The counterexample's last step falsifies both: x and y jump together.
  ASSERT_GE(r.counterexample.size(), 2u);
  const State& last = r.counterexample.back();
  EXPECT_EQ(last[x].as_int(), 1);
  EXPECT_EQ(last[y].as_int(), 1);
}

TEST_F(OrthogonalityTest, AgreesWithOracleOnAllLassos) {
  // E _|_ M as evaluated by the oracle must match a direct prefix-machine
  // simulation on every lasso of the universe (up to length 3).
  Oracle oracle(vars);
  Formula orth = tf::orthogonal(ex_spec, my_spec);
  PrefixMachine e(vars, ex_spec);
  PrefixMachine m(vars, my_spec);
  std::size_t checked = 0;
  for (std::size_t len = 1; len <= 3; ++len) {
    for_each_lasso(vars, len, [&](const LassoBehavior& b) {
      ++checked;
      // Direct simulation around the lasso (two full loops is enough for
      // machines whose configurations are monotone-dead here).
      bool direct = true;
      Value ce = e.initial(b.at(0));
      Value cm = m.initial(b.at(0));
      // n = 0: both vacuously hold for the empty prefix; both failing in
      // the first state already violates orthogonality.
      if (!e.alive(ce) && !m.alive(cm)) direct = false;
      std::size_t pos = 0;
      for (std::size_t k = 0; k < 2 * b.length() + 2 && direct; ++k) {
        const bool e_was = e.alive(ce);
        const bool m_was = m.alive(cm);
        std::size_t next = b.successor(pos);
        ce = e.step(ce, b.at(pos), b.at(next));
        cm = m.step(cm, b.at(pos), b.at(next));
        if (e_was && m_was && !e.alive(ce) && !m.alive(cm)) direct = false;
        pos = next;
      }
      EXPECT_EQ(oracle.evaluate(orth, b), direct) << b.to_string(vars);
      return false;
    });
  }
  EXPECT_GT(checked, 200u);
}

TEST_F(OrthogonalityTest, Prop4SyntacticAgreesWithSemanticCheck) {
  // Under Disjoint(x, y), Proposition 4 concludes orthogonality; the
  // semantic check on the interleaved generator confirms it.
  Obligation prop4 = prop4_orthogonality(vars, ex_spec, {x}, my_spec, {y});
  EXPECT_TRUE(prop4);
  StateGraph g = generator(true);
  PrefixMachine e(vars, ex_spec);
  PrefixMachine m(vars, my_spec);
  EXPECT_TRUE(check_orthogonality(g, e, m).holds);
}

TEST_F(OrthogonalityTest, WhilePlusEquivalenceUnderOrthogonality) {
  // Section 4.2: E _|_ M implies that E -> M and E +> M agree. Verify on
  // every lasso where orthogonality holds.
  Oracle oracle(vars);
  Formula orth = tf::orthogonal(ex_spec, my_spec);
  Formula wp = tf::while_plus(ex_spec, my_spec);
  Formula aw = tf::arrow_while(ex_spec, my_spec);
  for (std::size_t len = 1; len <= 3; ++len) {
    for_each_lasso(vars, len, [&](const LassoBehavior& b) {
      if (oracle.evaluate(orth, b)) {
        EXPECT_EQ(oracle.evaluate(wp, b), oracle.evaluate(aw, b)) << b.to_string(vars);
      }
      return false;
    });
  }
}

}  // namespace
}  // namespace opentla
