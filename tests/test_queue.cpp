// Integration tests for the Appendix-A queue substrate: handshake
// channels, the single-queue specifications (Figures 2-6), machine
// closure, invariants, and the claimed WF equivalence.

#include <gtest/gtest.h>

#include "opentla/check/invariant.hpp"
#include "opentla/expr/eval.hpp"
#include "opentla/check/liveness.hpp"
#include "opentla/check/machine_closure.hpp"
#include "opentla/compose/compose.hpp"
#include "opentla/graph/successor.hpp"
#include "opentla/queue/queue_spec.hpp"

namespace opentla {
namespace {

class QueueTest : public ::testing::Test {
 protected:
  QueueTest() : sys(make_queue_system(/*capacity=*/2, /*num_values=*/2)) {}

  StateGraph complete_graph() {
    return build_composite_graph(sys.vars, {{sys.specs.complete.unhidden(), true}});
  }

  QueueSystem sys;
};

TEST_F(QueueTest, ChannelHandshakeTrace) {
  // Figure 2: ready -> send -> ack -> send -> ...
  VarTable vars;
  Channel ch = declare_channel(vars, "c", range_domain(0, 9));
  State s = ActionSuccessors::states_satisfying(vars, channel_init(ch), {ch.val})[0];
  EXPECT_EQ(s[ch.sig].as_int(), 0);
  EXPECT_EQ(s[ch.ack].as_int(), 0);

  ActionSuccessors send(vars, send_action(ex::integer(7), ch));
  ActionSuccessors ack(vars, ack_action(ch));
  // Ready: send enabled, ack disabled.
  EXPECT_TRUE(send.enabled(s));
  EXPECT_FALSE(ack.enabled(s));
  std::vector<State> after_send = send.successors(s);
  ASSERT_EQ(after_send.size(), 1u);
  EXPECT_EQ(after_send[0][ch.val].as_int(), 7);
  EXPECT_EQ(after_send[0][ch.sig].as_int(), 1);
  EXPECT_EQ(after_send[0][ch.ack].as_int(), 0);
  // Pending: ack enabled, send disabled.
  EXPECT_FALSE(send.enabled(after_send[0]));
  ASSERT_TRUE(ack.enabled(after_send[0]));
  std::vector<State> after_ack = ack.successors(after_send[0]);
  ASSERT_EQ(after_ack.size(), 1u);
  EXPECT_EQ(after_ack[0][ch.ack].as_int(), 1);
  EXPECT_EQ(after_ack[0][ch.val].as_int(), 7);  // value persists
}

TEST_F(QueueTest, CompleteSystemReachableStates) {
  StateGraph g = complete_graph();
  EXPECT_GT(g.num_states(), 10u);
  EXPECT_LT(g.num_states(), 500u);
}

TEST_F(QueueTest, BufferNeverOverflows) {
  StateGraph g = complete_graph();
  InvariantResult r =
      check_invariant(g, ex::le(ex::len(ex::var(sys.q)), ex::integer(sys.capacity)));
  EXPECT_TRUE(r.holds) << format_trace(sys.vars, r.counterexample);
}

TEST_F(QueueTest, HandshakeProtocolInvariant) {
  // Each channel's sig/ack stay bits (trivially by domain) and the queue
  // only acknowledges pending inputs: whenever i.sig = i.ack, no enqueue is
  // possible.
  StateGraph g = complete_graph();
  Expr no_enq_when_ready = ex::implies(ex::eq(ex::var(sys.in.sig), ex::var(sys.in.ack)),
                                       ex::lnot(ex::enabled(sys.specs.enq)));
  InvariantResult r = check_invariant(g, no_enq_when_ready);
  EXPECT_TRUE(r.holds) << format_trace(sys.vars, r.counterexample);
}

TEST_F(QueueTest, FifoOrderInvariant) {
  // Values travel FIFO: with two distinct values and capacity 2, whenever
  // the queue holds <<a, b>> those are exactly the last two accepted
  // values in order. We check a weaker but meaningful structural fact:
  // o.val, once sent while |q| > 0, equals what was Head(q) before -- here
  // expressed as an invariant linking a pending output to the absence of
  // that value at the tail... kept simple: a pending output means the
  // queue sent Head first.
  StateGraph g = complete_graph();
  // If the output has a pending (unacknowledged) value and the queue is
  // full, the pending value cannot have jumped the queue: it must differ
  // from the most recently enqueued value unless both are equal anyway.
  // This degenerates for a 2-value domain, so instead check the exactness
  // of Deq: ENABLED Deq <=> (o ready /\ q nonempty).
  Expr claim = ex::equiv(ex::enabled(sys.specs.deq),
                         ex::land(ex::eq(ex::var(sys.out.sig), ex::var(sys.out.ack)),
                                  ex::gt(ex::len(ex::var(sys.q)), ex::integer(0))));
  InvariantResult r = check_invariant(g, claim);
  EXPECT_TRUE(r.holds) << format_trace(sys.vars, r.counterexample);
}

TEST_F(QueueTest, MachineClosureOfICQ) {
  // Proposition 1 applies syntactically (WF(QM) with QM a sub-action of N)
  // and semantically on the reachable graph.
  EXPECT_TRUE(check_prop1_syntactic(sys.specs.complete));
  EXPECT_TRUE(check_prop1_syntactic(sys.specs.queue));
  StateGraph g = complete_graph();
  MachineClosureResult mc = check_machine_closure_on_graph(g, sys.specs.complete.unhidden());
  EXPECT_TRUE(mc.machine_closed) << mc.detail;
}

TEST_F(QueueTest, CompleteSystemEqualsComponentConjunction) {
  // CQ = QE /\ QM (as complete systems over the same universe): the
  // explicit graphs coincide.
  StateGraph direct = complete_graph();
  StateGraph composed = build_composite_graph(
      sys.vars, {{sys.specs.env, true}, {sys.specs.queue.unhidden(), true}});
  EXPECT_EQ(direct.num_states(), composed.num_states());
  EXPECT_EQ(direct.num_edges(), composed.num_edges());
  // Same state sets, not just counts.
  std::size_t found = 0;
  for (StateId s = 0; s < direct.num_states(); ++s) {
    if (composed.store().find(direct.state(s)) != StateStore::kNone) ++found;
  }
  EXPECT_EQ(found, direct.num_states());
}

TEST_F(QueueTest, WfOfQmEquivalentToWfEnqAndWfDeq) {
  // Figure 6's remark: replacing WF(QM) by WF(Enq) /\ WF(Deq) yields a
  // logically equivalent specification. Over the reachable graph: no
  // behavior satisfying one fairness set violates the other.
  StateGraph g = complete_graph();
  auto fairness = [&](Expr action, const char* label) {
    Fairness f;
    f.kind = Fairness::Kind::Weak;
    f.sub = sys.specs.complete.sub;
    f.action = std::move(action);
    f.label = label;
    return f;
  };
  const Fairness wf_qm = fairness(sys.specs.qm, "WF(QM)");
  const Fairness wf_enq = fairness(sys.specs.enq, "WF(Enq)");
  const Fairness wf_deq = fairness(sys.specs.deq, "WF(Deq)");

  auto violates = [&](const std::vector<Fairness>& holds, const Fairness& broken) {
    FairnessCompiler compiler(g);
    FairCycleQuery q;
    compiler.add_constraints(holds, q);
    compiler.restrict_to_violation(broken, q);
    return find_fair_cycle(g, q).has_value();
  };
  EXPECT_FALSE(violates({wf_qm}, wf_enq));
  EXPECT_FALSE(violates({wf_qm}, wf_deq));
  EXPECT_FALSE(violates({wf_enq, wf_deq}, wf_qm));
}

TEST_F(QueueTest, PendingInputIsAcceptedWhileSpaceRemains) {
  // Liveness under WF(QM): a pending input with buffer space cannot stay
  // pending forever. (Without an environment fairness assumption the queue
  // MAY stall once full and unacknowledged downstream -- see the next test
  // -- which is exactly why open-system reasoning needs assumptions.)
  StateGraph g = complete_graph();
  FairnessCompiler compiler(g);
  FairCycleQuery q;
  compiler.add_constraints(sys.specs.complete.fairness, q);
  // Violation: forever pending and with space, never acknowledged.
  q.filter.node_ok = [&](StateId s) {
    return g.state(s)[sys.in.sig].as_int() != g.state(s)[sys.in.ack].as_int() &&
           static_cast<int>(g.state(s)[sys.q].length()) < sys.capacity;
  };
  EXPECT_FALSE(find_fair_cycle(g, q).has_value());
}

TEST_F(QueueTest, LeadsToAcceptance) {
  // P ~> Q form of the acceptance-liveness property: a pending input with
  // buffer space leads to the input becoming acknowledged.
  StateGraph g = complete_graph();
  Expr pending_with_space =
      ex::land(ex::neq(ex::var(sys.in.sig), ex::var(sys.in.ack)),
               ex::lt(ex::len(ex::var(sys.q)), ex::integer(sys.capacity)));
  Expr accepted = ex::eq(ex::var(sys.in.sig), ex::var(sys.in.ack));
  LeadsToResult ok =
      check_leads_to(g, sys.specs.complete.fairness, pending_with_space, accepted);
  EXPECT_TRUE(ok.holds) << format_trace(sys.vars, ok.counterexample_prefix)
                        << format_trace(sys.vars, ok.counterexample_cycle);
  // Without fairness the property fails, and the counterexample's prefix
  // ends in a P-state with a Q-free cycle.
  LeadsToResult bad = check_leads_to(g, {}, pending_with_space, accepted);
  EXPECT_FALSE(bad.holds);
  ASSERT_FALSE(bad.counterexample_cycle.empty());
  for (const State& s : bad.counterexample_cycle) {
    EXPECT_FALSE(eval_pred(accepted, sys.vars, s));
  }
}

TEST_F(QueueTest, FullQueueMayStallForeverWithoutEnvFairness) {
  // The complete system has no fairness on Get: the environment may never
  // acknowledge the output, wedging a full queue with a pending input.
  StateGraph g = complete_graph();
  FairnessCompiler compiler(g);
  FairCycleQuery q;
  compiler.add_constraints(sys.specs.complete.fairness, q);
  q.filter.node_ok = [&](StateId s) {
    return g.state(s)[sys.in.sig].as_int() != g.state(s)[sys.in.ack].as_int();
  };
  EXPECT_TRUE(find_fair_cycle(g, q).has_value());
}

TEST_F(QueueTest, WithoutFairnessTheQueueMayStall) {
  // Sanity for the previous test: dropping fairness admits the stall.
  StateGraph g = complete_graph();
  FairCycleQuery q;
  q.filter.node_ok = [&](StateId s) {
    return g.state(s)[sys.in.sig].as_int() != g.state(s)[sys.in.ack].as_int();
  };
  EXPECT_TRUE(find_fair_cycle(g, q).has_value());
}

TEST(QueueHistory, FifoDeliveryViaHistoryVariables) {
  // The definitive FIFO theorem, via history variables: record every value
  // the queue accepts (h_in) and every value it emits (h_out); then h_out
  // is always a prefix of h_in. The histories are capped at 3 entries —
  // acceptance stops when the cap is reached, which bounds the state space
  // without weakening the invariant on the explored prefix of every run.
  VarTable vars;
  const Domain values = range_domain(0, 1);
  Channel in = declare_channel(vars, "i", values);
  Channel out = declare_channel(vars, "o", values);
  VarId q = vars.declare("q", seq_domain(values, 2));
  VarId h_in = vars.declare("h_in", seq_domain(values, 3));
  VarId h_out = vars.declare("h_out", seq_domain(values, 3));
  QueueSpecs base = build_queue_specs(vars, in, out, q, /*capacity=*/2);

  CanonicalSpec traced;
  traced.name = "TracedCQ";
  traced.init = ex::land({base.complete.init,
                          ex::eq(ex::var(h_in), ex::constant(Value::empty_seq())),
                          ex::eq(ex::var(h_out), ex::constant(Value::empty_seq()))});
  Expr enq_traced = ex::land({ex::lt(ex::len(ex::var(h_in)), ex::integer(3)), base.enq,
                              ex::eq(ex::primed_var(h_in),
                                     ex::append(ex::var(h_in), ex::var(in.val))),
                              ex::unchanged({h_out})});
  Expr deq_traced = ex::land({base.deq,
                              ex::eq(ex::primed_var(h_out),
                                     ex::append(ex::var(h_out), ex::head(ex::var(q)))),
                              ex::unchanged({h_in})});
  Expr env_traced = ex::land(base.qe, ex::unchanged({q, h_in, h_out}));
  traced.next = ex::lor(enq_traced, deq_traced, env_traced);
  traced.sub = vars.all_vars();

  StateGraph g = build_composite_graph(vars, {{traced, true}});
  EXPECT_GT(g.num_states(), 100u);

  // h_out is a prefix of h_in: not longer, and element-wise equal.
  Expr fifo = ex::land(
      ex::le(ex::len(ex::var(h_out)), ex::len(ex::var(h_in))),
      ex::forall_val("i", range_domain(1, 3),
                     ex::implies(ex::le(ex::local("i"), ex::len(ex::var(h_out))),
                                 ex::eq(ex::index(ex::var(h_out), ex::local("i")),
                                        ex::index(ex::var(h_in), ex::local("i"))))));
  InvariantResult r = check_invariant(g, fifo);
  EXPECT_TRUE(r.holds) << format_trace(vars, r.counterexample);

  // Control: a corrupted dequeue (emitting Tail's head, i.e. the SECOND
  // element) must violate the prefix property.
  CanonicalSpec broken = traced;
  broken.name = "BrokenCQ";
  Expr deq_wrong = ex::land({ex::gt(ex::len(ex::var(q)), ex::integer(1)), base.deq,
                             ex::eq(ex::primed_var(h_out),
                                    ex::append(ex::var(h_out),
                                               ex::head(ex::tail(ex::var(q))))),
                             ex::unchanged({h_in})});
  broken.next = ex::lor(enq_traced, deq_wrong, env_traced);
  StateGraph gb = build_composite_graph(vars, {{broken, true}});
  InvariantResult rb = check_invariant(gb, fifo);
  EXPECT_FALSE(rb.holds);
}

}  // namespace
}  // namespace opentla
