// Unit tests for specification utilities: renaming (the paper's F[w/v]
// substitutions), DNF expansion semantics, canonical-spec helpers, the
// Disjoint builder, and positional oracle evaluation.

#include <gtest/gtest.h>

#include "opentla/expr/analysis.hpp"
#include "opentla/expr/eval.hpp"
#include "opentla/state/state_space.hpp"
#include "opentla/queue/queue_spec.hpp"
#include "opentla/compose/compose.hpp"
#include "opentla/semantics/enumerate.hpp"
#include "opentla/semantics/oracle.hpp"
#include "opentla/tla/disjoint.hpp"

namespace opentla {
namespace {

TEST(SpecRename, RenamesAllParts) {
  VarTable vars;
  VarId a = vars.declare("a", range_domain(0, 1));
  VarId b = vars.declare("b", range_domain(0, 1));
  VarId c = vars.declare("c", range_domain(0, 1));

  CanonicalSpec s;
  s.name = "S";
  s.init = ex::eq(ex::var(a), ex::integer(0));
  s.next = ex::land(ex::eq(ex::primed_var(a), ex::var(b)), ex::unchanged({b}));
  s.sub = {a};
  s.hidden = {a};
  Fairness f;
  f.kind = Fairness::Kind::Weak;
  f.sub = {a};
  f.action = s.next;
  s.fairness = {f};

  CanonicalSpec r = s.renamed({{a, c}}, "S'");
  EXPECT_EQ(r.name, "S'");
  EXPECT_EQ(r.sub, std::vector<VarId>{c});
  EXPECT_EQ(r.hidden, std::vector<VarId>{c});
  EXPECT_EQ(r.fairness[0].sub, std::vector<VarId>{c});
  EXPECT_EQ(r.init.to_string(vars), "c = 0");
  EXPECT_EQ(r.next.to_string(vars), "c' = b /\\ (b' = b)");
  // The original is untouched.
  EXPECT_EQ(s.sub, std::vector<VarId>{a});
}

TEST(SpecUtils, BoxStepActionAllowsStutterAndNext) {
  VarTable vars;
  VarId x = vars.declare("x", range_domain(0, 2));
  VarId y = vars.declare("y", range_domain(0, 2));
  CanonicalSpec s;
  s.init = ex::top();
  s.next = ex::eq(ex::primed_var(x), ex::add(ex::var(x), ex::integer(1)));
  s.sub = {x};

  State s0({Value::integer(0), Value::integer(0)});
  State s1({Value::integer(1), Value::integer(0)});
  State s2({Value::integer(2), Value::integer(2)});
  EXPECT_TRUE(s.step_ok(vars, s0, s1));   // the action
  EXPECT_TRUE(s.step_ok(vars, s0, s0));   // stutter
  EXPECT_FALSE(s.step_ok(vars, s1, s0));  // decrement: neither
  // A step changing only y is a [N]_x stutter.
  EXPECT_TRUE(s.step_ok(vars, s0, State({Value::integer(0), Value::integer(2)})));
  EXPECT_FALSE(s.step_ok(vars, s0, s2));  // x jumps by 2
  (void)y;
}

TEST(SpecUtils, SafetyPartAndUnhidden) {
  QueueSystem sys = make_queue_system(1, 2);
  CanonicalSpec safety = sys.specs.queue.safety_part();
  EXPECT_TRUE(safety.fairness.empty());
  EXPECT_EQ(safety.hidden, sys.specs.queue.hidden);
  CanonicalSpec open = sys.specs.queue.unhidden();
  EXPECT_TRUE(open.hidden.empty());
  EXPECT_FALSE(open.fairness.empty());
}

TEST(SpecUtils, SpecVariablesCollectsEverything) {
  QueueSystem sys = make_queue_system(1, 2);
  std::set<VarId> vs = spec_variables(sys.specs.queue);
  EXPECT_TRUE(vs.contains(sys.q));
  EXPECT_TRUE(vs.contains(sys.in.sig));
  EXPECT_TRUE(vs.contains(sys.out.val));
}

TEST(ToDnf, PreservesSemantics) {
  VarTable vars;
  VarId x = vars.declare("x", range_domain(0, 1));
  VarId y = vars.declare("y", range_domain(0, 1));
  // ((x'=0 \/ x'=1-x) /\ (y'=y \/ x=1)) \/ (x=0 /\ y'=0 /\ x'=x)
  Expr e = ex::lor(
      ex::land(ex::lor(ex::eq(ex::primed_var(x), ex::integer(0)),
                       ex::eq(ex::primed_var(x), ex::sub(ex::integer(1), ex::var(x)))),
               ex::lor(ex::eq(ex::primed_var(y), ex::var(y)),
                       ex::eq(ex::var(x), ex::integer(1)))),
      ex::land(ex::eq(ex::var(x), ex::integer(0)),
               ex::eq(ex::primed_var(y), ex::integer(0)),
               ex::eq(ex::primed_var(x), ex::var(x))));
  Expr dnf = to_dnf(e);
  EXPECT_GE(flatten_or(dnf).size(), 4u);
  StateSpace space(vars);
  space.for_each_state([&](const State& s) {
    space.for_each_state([&](const State& t) {
      EXPECT_EQ(eval_action(e, vars, s, t), eval_action(dnf, vars, s, t));
    });
  });
}

TEST(Disjoint, SpecMatchesStepHelper) {
  VarTable vars;
  VarId a = vars.declare("a", range_domain(0, 1));
  VarId b = vars.declare("b", range_domain(0, 1));
  VarId c = vars.declare("c", range_domain(0, 1));
  std::vector<std::vector<VarId>> tuples = {{a}, {b, c}};
  CanonicalSpec spec = make_disjoint(tuples);
  StateSpace space(vars);
  space.for_each_state([&](const State& s) {
    space.for_each_state([&](const State& t) {
      EXPECT_EQ(spec.step_ok(vars, s, t), step_disjoint(tuples, s, t))
          << s.to_string(vars) << " -> " << t.to_string(vars);
    });
  });
}

TEST(OraclePositions, SuffixEvaluationShiftsTheBehavior) {
  VarTable vars;
  VarId x = vars.declare("x", range_domain(0, 2));
  auto st = [&](std::int64_t v) { return State({Value::integer(v)}); };
  LassoBehavior b({st(0), st(1), st(2)}, 2);  // 0 1 2 2 2 ...
  Oracle oracle(vars);
  Formula is2 = tf::pred(ex::eq(ex::var(x), ex::integer(2)));
  EXPECT_FALSE(oracle.evaluate_at(is2, b, 0));
  EXPECT_FALSE(oracle.evaluate_at(is2, b, 1));
  EXPECT_TRUE(oracle.evaluate_at(is2, b, 2));
  EXPECT_TRUE(oracle.evaluate_at(is2, b, 7));  // wraps into the loop
  Formula always2 = tf::always(is2);
  EXPECT_FALSE(oracle.evaluate_at(always2, b, 1));
  EXPECT_TRUE(oracle.evaluate_at(always2, b, 2));
  // [] <> and <> [] at different positions.
  EXPECT_TRUE(oracle.evaluate_at(tf::eventually(always2), b, 0));
}

TEST(OraclePositions, NestedTemporalOperators) {
  VarTable vars;
  VarId x = vars.declare("x", range_domain(0, 1));
  auto st = [&](std::int64_t v) { return State({Value::integer(v)}); };
  LassoBehavior alternating({st(0), st(1)}, 0);  // 0 1 0 1 ...
  Oracle oracle(vars);
  Formula p0 = tf::pred(ex::eq(ex::var(x), ex::integer(0)));
  EXPECT_TRUE(oracle.evaluate(tf::always(tf::eventually(p0)), alternating));
  EXPECT_FALSE(oracle.evaluate(tf::eventually(tf::always(p0)), alternating));
  EXPECT_TRUE(oracle.evaluate(
      tf::always(tf::lor(p0, tf::eventually(p0))), alternating));
}

TEST(GraphLassos, RandomGraphLassosAreBehaviorsOfTheSystem) {
  QueueSystem sys = make_queue_system(1, 2);
  StateGraph g = build_composite_graph(sys.vars, {{sys.specs.complete.unhidden(), true}});
  std::mt19937 rng(3);
  Oracle oracle(sys.vars);
  Formula safety = tf::closure(sys.specs.complete.unhidden());
  for (int i = 0; i < 10; ++i) {
    LassoBehavior b = random_graph_lasso(g, rng);
    EXPECT_TRUE(oracle.evaluate(safety, b)) << b.to_string(sys.vars);
  }
}

TEST(GraphLassos, ExistentialWeakeningOnSystemBehaviors) {
  // A behavior of the system with q explicit satisfies the unhidden safety
  // spec; a fortiori it satisfies the EE q-quantified one (the oracle's
  // product-emptiness path must find the explicit q as a witness).
  QueueSystem sys = make_queue_system(1, 2);
  StateGraph g = build_composite_graph(sys.vars, {{sys.specs.complete.unhidden(), true}});
  std::mt19937 rng(11);
  Oracle oracle(sys.vars);
  Formula unhidden = tf::closure(sys.specs.complete.unhidden());
  Formula hidden = tf::closure(sys.specs.complete);
  for (int i = 0; i < 10; ++i) {
    LassoBehavior b = random_graph_lasso(g, rng);
    ASSERT_TRUE(oracle.evaluate(unhidden, b));
    EXPECT_TRUE(oracle.evaluate(hidden, b)) << b.to_string(sys.vars);
  }
  // And corrupting q mid-behavior breaks the unhidden spec while the
  // quantified one can still hold if SOME q-assignment explains the
  // visible part — exercised by scrambling q in a copy of a short run.
  LassoBehavior b = random_graph_lasso(g, rng);
  std::vector<State> states;
  for (std::size_t i2 = 0; i2 < b.length(); ++i2) states.push_back(b.at(i2));
  if (states.size() >= 2) {
    states[1][sys.q] = Value::tuple({Value::integer(0), Value::integer(0)});
    LassoBehavior corrupted(states, b.loop_start());
    // The explicit-q spec almost surely rejects the scramble; the
    // quantified spec's verdict must equal whether a witness exists, which
    // is exactly what the visible projection of the original run gives: it
    // must still accept.
    EXPECT_TRUE(oracle.evaluate(hidden, corrupted)) << corrupted.to_string(sys.vars);
  }
}

}  // namespace
}  // namespace opentla
