// Unit tests for refinement mappings and the refinement checker
// (opentla/check/refinement): init/step/liveness verdicts, cross-universe
// mappings, and counterexample shapes.

#include <gtest/gtest.h>

#include "opentla/check/refinement.hpp"
#include "opentla/compose/compose.hpp"

namespace opentla {
namespace {

// Low level: a two-bit counter (lo, hi). High level: an abstract counter
// n = 2*hi + lo modulo 4, incremented one step at a time.
class CounterRefinementTest : public ::testing::Test {
 protected:
  CounterRefinementTest() {
    lo = low_vars.declare("lo", range_domain(0, 1));
    hi = low_vars.declare("hi", range_domain(0, 1));
    n = high_vars.declare("n", range_domain(0, 3));

    low.name = "TwoBit";
    low.init = ex::land(ex::eq(ex::var(lo), ex::integer(0)),
                        ex::eq(ex::var(hi), ex::integer(0)));
    // Increment with carry.
    Expr carry = ex::land(ex::eq(ex::var(lo), ex::integer(1)),
                          ex::eq(ex::primed_var(lo), ex::integer(0)),
                          ex::eq(ex::primed_var(hi),
                                 ex::sub(ex::integer(1), ex::var(hi))));
    Expr no_carry = ex::land(ex::eq(ex::var(lo), ex::integer(0)),
                             ex::eq(ex::primed_var(lo), ex::integer(1)),
                             ex::unchanged({hi}));
    low.next = ex::lor(no_carry, carry);
    low.sub = {lo, hi};
    Fairness wf;
    wf.kind = Fairness::Kind::Weak;
    wf.sub = low.sub;
    wf.action = low.next;
    wf.label = "WF(inc)";
    low.fairness.push_back(std::move(wf));

    high.name = "Mod4";
    high.init = ex::eq(ex::var(n), ex::integer(0));
    high.next = ex::lor(
        ex::land(ex::lt(ex::var(n), ex::integer(3)),
                 ex::eq(ex::primed_var(n), ex::add(ex::var(n), ex::integer(1)))),
        ex::land(ex::eq(ex::var(n), ex::integer(3)),
                 ex::eq(ex::primed_var(n), ex::integer(0))));
    high.sub = {n};
    Fairness hwf;
    hwf.kind = Fairness::Kind::Weak;
    hwf.sub = {n};
    hwf.action = high.next;
    hwf.label = "WF(n)";
    high.fairness.push_back(std::move(hwf));

    witness = ex::add(ex::mul(ex::integer(2), ex::var(hi)), ex::var(lo));
  }

  StateGraph low_graph() { return build_composite_graph(low_vars, {{low, true}}); }

  VarTable low_vars, high_vars;
  VarId lo = 0, hi = 0, n = 0;
  CanonicalSpec low, high;
  Expr witness;
};

TEST_F(CounterRefinementTest, MappingEvaluatesWitnesses) {
  RefinementMapping m(low_vars, high_vars, {witness});
  State s({Value::integer(1), Value::integer(1)});
  EXPECT_EQ(m.map(s)[n], Value::integer(3));
}

TEST_F(CounterRefinementTest, MappingByNameRequiresCoverage) {
  EXPECT_THROW(mapping_by_name(low_vars, high_vars, {}), std::runtime_error);
  RefinementMapping m = mapping_by_name(low_vars, high_vars, {{"n", witness}});
  State s({Value::integer(0), Value::integer(1)});
  EXPECT_EQ(m.map(s)[n], Value::integer(2));
}

TEST_F(CounterRefinementTest, TwoBitCounterRefinesMod4) {
  StateGraph g = low_graph();
  RefinementMapping m(low_vars, high_vars, {witness});
  RefinementResult r = check_refinement(g, low.fairness, high, m);
  EXPECT_TRUE(r.holds) << r.failed_part;
  EXPECT_EQ(r.states, 4u);
}

TEST_F(CounterRefinementTest, WrongWitnessFailsInitOrStep) {
  StateGraph g = low_graph();
  // Swapped significance: n = 2*lo + hi breaks the step simulation (the
  // carry step maps 2*1+0=... it still starts at 0, so init passes).
  Expr bad = ex::add(ex::mul(ex::integer(2), ex::var(lo)), ex::var(hi));
  RefinementMapping m(low_vars, high_vars, {bad});
  RefinementResult r = check_refinement(g, low.fairness, high, m);
  EXPECT_FALSE(r.holds);
  EXPECT_EQ(r.failed_part, "step");
  EXPECT_FALSE(r.counterexample_prefix.empty());
}

TEST_F(CounterRefinementTest, InitFailureDetected) {
  CanonicalSpec high1 = high;
  high1.init = ex::eq(ex::var(n), ex::integer(1));
  StateGraph g = low_graph();
  RefinementMapping m(low_vars, high_vars, {witness});
  RefinementResult r = check_refinement(g, low.fairness, high1, m);
  EXPECT_FALSE(r.holds);
  EXPECT_EQ(r.failed_part, "init");
}

TEST_F(CounterRefinementTest, LivenessTransferNeedsLowFairness) {
  StateGraph g = low_graph();
  RefinementMapping m(low_vars, high_vars, {witness});
  // Without the low system's WF constraint, the stutter-forever behavior
  // violates the high WF(n): liveness must fail with a lasso.
  RefinementResult r = check_refinement(g, /*low_fairness=*/{}, high, m);
  EXPECT_FALSE(r.holds);
  EXPECT_EQ(r.failed_part, "WF(n)");
  EXPECT_FALSE(r.counterexample_cycle.empty());
}

TEST_F(CounterRefinementTest, StrongFairnessGoalTransfer) {
  // Replace the high fairness by SF; the deterministic low counter also
  // satisfies it (the action is enabled and taken infinitely often).
  CanonicalSpec high_sf = high;
  high_sf.fairness[0].kind = Fairness::Kind::Strong;
  high_sf.fairness[0].label = "SF(n)";
  StateGraph g = low_graph();
  RefinementMapping m(low_vars, high_vars, {witness});
  EXPECT_TRUE(check_refinement(g, low.fairness, high_sf, m).holds);
  // And without low fairness it fails again.
  RefinementResult r = check_refinement(g, {}, high_sf, m);
  EXPECT_FALSE(r.holds);
  EXPECT_EQ(r.failed_part, "SF(n)");
}

}  // namespace
}  // namespace opentla
