// The parallel exploration engine's contract (opentla/par): for every
// thread count, the StateGraph it produces is bit-identical to the serial
// BFS — same state-id assignment, same adjacency lists in the same order,
// same initial() list. Checked node-by-node and edge-by-edge on the
// paper's spaces (the Figure 2 handshake channel, the Figure 4 queue, the
// Figure 9 double-queue composition), plus the overflow and empty-input
// edge cases the serial engine defines.

#include <gtest/gtest.h>

#include <chrono>
#include <cstddef>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "opentla/compose/compose.hpp"
#include "opentla/graph/state_graph.hpp"
#include "opentla/graph/successor.hpp"
#include "opentla/queue/channel.hpp"
#include "opentla/queue/double_queue.hpp"
#include "opentla/obs/obs.hpp"
#include "opentla/obs/profiler.hpp"
#include "opentla/obs/progress.hpp"
#include "opentla/queue/queue_spec.hpp"

namespace opentla {
namespace {

ExploreOptions with_threads(unsigned threads, std::size_t max_states = 2'000'000) {
  ExploreOptions opts;
  opts.threads = threads;
  opts.max_states = max_states;
  return opts;
}

/// Bit-identical graph equality: ids, adjacency order, initial order, and
/// the interned state behind every id.
void expect_identical(const StateGraph& serial, const StateGraph& parallel,
                      unsigned threads) {
  SCOPED_TRACE("threads=" + std::to_string(threads));
  ASSERT_EQ(serial.num_states(), parallel.num_states());
  EXPECT_EQ(serial.num_edges(), parallel.num_edges());
  EXPECT_EQ(serial.initial(), parallel.initial());
  for (StateId s = 0; s < serial.num_states(); ++s) {
    EXPECT_EQ(serial.state(s), parallel.state(s)) << "state id " << s;
    EXPECT_EQ(serial.successors(s), parallel.successors(s)) << "adjacency of " << s;
  }
}

// --- Figure 2: the handshake channel automaton. ---

struct ChannelSpace {
  VarTable vars;
  Channel ch;
  ActionSuccessors any;
  State init;

  explicit ChannelSpace(int num_values)
      : ch(declare_channel(vars, "c", range_domain(0, num_values - 1))),
        any(vars, ex::lor(send_any_action(ch), ack_action(ch))),
        init(ActionSuccessors::states_satisfying(vars, channel_init(ch), {ch.val})[0]) {}

  StateGraph::SuccessorFn succ() const {
    return [this](const State& s, const std::function<void(const State&)>& emit) {
      any.for_each_successor(s, emit);
    };
  }
};

TEST(ParallelExplore, HandshakeChannelIdenticalAcrossThreadCounts) {
  ChannelSpace space(32);
  StateGraph serial(space.vars, {space.init}, space.succ(), with_threads(1));
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    StateGraph parallel(space.vars, {space.init}, space.succ(), with_threads(threads));
    expect_identical(serial, parallel, threads);
  }
}

// --- Figure 4: the N-element queue complete system. ---

TEST(ParallelExplore, QueueCompleteSystemIdenticalAcrossThreadCounts) {
  QueueSystem sys = make_queue_system(/*capacity=*/2, /*num_values=*/2);
  std::vector<CompositePart> parts = {{sys.specs.complete.unhidden(), true}};
  StateGraph serial = build_composite_graph(sys.vars, parts, {}, {}, with_threads(1));
  for (unsigned threads : {2u, 4u, 8u}) {
    StateGraph parallel =
        build_composite_graph(sys.vars, parts, {}, {}, with_threads(threads));
    expect_identical(serial, parallel, threads);
  }
}

// --- Figure 9: the double-queue composition (CDQ). ---

TEST(ParallelExplore, DoubleQueueCompositionIdenticalAcrossThreadCounts) {
  DoubleQueueSystem sys = make_double_queue(/*capacity=*/1, /*num_values=*/2);
  std::vector<CompositePart> parts = {{make_cdq(sys).unhidden(), true},
                                      {make_pin(sys.vars, {sys.q}, "PinQ"), false}};
  StateGraph serial =
      build_composite_graph(sys.vars, parts, {}, {sys.q}, with_threads(1));
  EXPECT_GT(serial.num_states(), 20u);
  for (unsigned threads : {2u, 4u, 8u}) {
    StateGraph parallel =
        build_composite_graph(sys.vars, parts, {}, {sys.q}, with_threads(threads));
    expect_identical(serial, parallel, threads);
  }
}

// --- Edge cases the serial engine defines. ---

TEST(ParallelExplore, MaxStatesOverflowStopsAtSameCountUnderContention) {
  // 130 reachable states, capped at 40: every thread count must stop
  // gracefully at exactly the cap with StopReason::kStateBudget — the
  // unified budget semantics (serial used to throw, parallel used to
  // truncate silently).
  ChannelSpace space(64);
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    StateGraph g(space.vars, {space.init}, space.succ(),
                 with_threads(threads, /*max_states=*/40));
    EXPECT_EQ(g.num_states(), 40u);
    EXPECT_EQ(g.stop_reason(), run::StopReason::kStateBudget);
  }
}

TEST(ParallelExplore, EmptyInitialStatesYieldEmptyGraph) {
  ChannelSpace space(4);
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    StateGraph g(space.vars, {}, space.succ(), with_threads(threads));
    EXPECT_EQ(g.num_states(), 0u);
    EXPECT_EQ(g.num_edges(), 0u);
    EXPECT_TRUE(g.initial().empty());
  }
}

TEST(ParallelExplore, DuplicateInitialStatesDedupeLikeSerial) {
  ChannelSpace space(4);
  const std::vector<State> inits = {space.init, space.init, space.init};
  StateGraph serial(space.vars, inits, space.succ(), with_threads(1));
  for (unsigned threads : {2u, 4u}) {
    StateGraph parallel(space.vars, inits, space.succ(), with_threads(threads));
    expect_identical(serial, parallel, threads);
  }
  EXPECT_EQ(serial.initial().size(), 1u);
}

TEST(ParallelExplore, ZeroThreadsResolvesToHardwareConcurrency) {
  // threads=0 must still produce the canonical graph (whatever the host's
  // core count turns out to be).
  ChannelSpace space(8);
  StateGraph serial(space.vars, {space.init}, space.succ(), with_threads(1));
  StateGraph parallel(space.vars, {space.init}, space.succ(), with_threads(0));
  expect_identical(serial, parallel, 0);
}

TEST(ParallelExplore, BitIdentityHoldsWithProgressSamplerActive) {
  // The acceptance bar for the live heartbeat: a ProgressSampler polling
  // the frontier level concurrently with the worker pool must not perturb
  // the graph. This test is part of the TSan suite (tools/ci_sanitize.sh),
  // so it also proves the sampler races with nothing.
  DoubleQueueSystem sys = make_double_queue(/*capacity=*/1, /*num_values=*/2);
  std::vector<CompositePart> parts = {{make_cdq(sys).unhidden(), true},
                                      {make_pin(sys.vars, {sys.q}, "PinQ"), false}};
  StateGraph serial =
      build_composite_graph(sys.vars, parts, {}, {sys.q}, with_threads(1));

  obs::reset();
  obs::set_enabled(true);
  std::size_t samples_delivered = 0;
  {
    obs::ProgressSampler sampler(std::chrono::milliseconds(1),
                                 [&](const obs::ProgressSample&) {
                                   ++samples_delivered;
                                 });
    for (unsigned threads : {2u, 4u, 8u}) {
      StateGraph parallel =
          build_composite_graph(sys.vars, parts, {}, {sys.q}, with_threads(threads));
      expect_identical(serial, parallel, threads);
    }
  }
  EXPECT_GE(samples_delivered, 2u);  // at least the start + final samples
  obs::set_enabled(false);
  obs::reset();
}

TEST(ParallelExplore, BitIdentityHoldsWithSamplingProfilerActive) {
  // Same contract as the progress-sampler test, but for the obs v4
  // span-stack profiler: a background thread walking every explorer
  // thread's span stack at 1 kHz only reads atomics, so it must not
  // perturb state-id assignment or adjacency order at any thread count.
  // Part of the TSan suite (tools/ci_sanitize.sh).
  DoubleQueueSystem sys = make_double_queue(/*capacity=*/1, /*num_values=*/2);
  std::vector<CompositePart> parts = {{make_cdq(sys).unhidden(), true},
                                      {make_pin(sys.vars, {sys.q}, "PinQ"), false}};
  StateGraph serial =
      build_composite_graph(sys.vars, parts, {}, {sys.q}, with_threads(1));

  obs::reset();
  obs::set_enabled(true);
  {
    obs::SamplingProfiler profiler(/*hz=*/1000.0);
    for (unsigned threads : {2u, 4u, 8u}) {
      StateGraph parallel =
          build_composite_graph(sys.vars, parts, {}, {sys.q}, with_threads(threads));
      expect_identical(serial, parallel, threads);
    }
    profiler.stop();
    EXPECT_GE(profiler.samples(), 1u);
  }
  obs::set_enabled(false);
  obs::reset();
}

TEST(ParallelExplore, SamplerSeesOnlyRegisteredSpanNamesUnderConcurrency) {
  // Four explorer threads push/pop spans concurrently while the profiler
  // samples their stacks at 1 kHz. The push protocol (release depth store
  // after relaxed frame store) means a sampled stack is never torn: every
  // frame the sampler reads decodes to a name a Span actually interned —
  // nothing empty, nothing out of the name table. TSan covers the data
  // races; the assertions cover torn reads.
  if (!obs::compile_time_enabled()) {
    GTEST_SKIP() << "engine span instrumentation compiled out (-DOPENTLA_OBS=OFF)";
  }
  DoubleQueueSystem sys = make_double_queue(/*capacity=*/1, /*num_values=*/2);
  std::vector<CompositePart> parts = {{make_cdq(sys).unhidden(), true},
                                      {make_pin(sys.vars, {sys.q}, "PinQ"), false}};

  obs::reset();
  obs::set_enabled(true);
  std::vector<obs::FoldedStack> stacks;
  {
    obs::SamplingProfiler profiler(/*hz=*/1000.0);
    for (int repeat = 0; repeat < 3; ++repeat) {
      StateGraph parallel =
          build_composite_graph(sys.vars, parts, {}, {sys.q}, with_threads(4));
      ASSERT_GT(parallel.num_states(), 0u);
    }
    profiler.stop();
    EXPECT_GE(profiler.samples(), 1u);
    stacks = profiler.folded();
  }
  const std::vector<std::string> table = obs::detail::profiler_name_table();
  const std::set<std::string> registered(table.begin(), table.end());
  EXPECT_TRUE(registered.count("par.explore"));
  EXPECT_TRUE(registered.count("par.worker"));
  for (const obs::FoldedStack& fs : stacks) {
    EXPECT_GT(fs.count, 0u);
    EXPECT_FALSE(fs.stack.empty());
    std::size_t begin = 0;
    while (begin <= fs.stack.size()) {
      const std::size_t end = fs.stack.find(';', begin);
      const std::string frame = fs.stack.substr(
          begin, end == std::string::npos ? std::string::npos : end - begin);
      EXPECT_FALSE(frame.empty()) << "torn frame in \"" << fs.stack << "\"";
      EXPECT_TRUE(registered.count(frame))
          << "unregistered frame \"" << frame << "\" in \"" << fs.stack << "\"";
      if (end == std::string::npos) break;
      begin = end + 1;
    }
  }
  obs::set_enabled(false);
  obs::reset();
}

TEST(ParallelExplore, SuccessorEmissionOrderIsDeterministic) {
  // The renumbering phase relies on successor providers emitting in a
  // fixed order for a fixed state (see graph/successor.cpp). Pin that
  // contract: repeated enumeration of the same state gives the same
  // sequence, element for element.
  QueueSystem sys = make_queue_system(/*capacity=*/2, /*num_values=*/3);
  ActionSuccessors gen(sys.vars, sys.specs.complete.unhidden().next);
  const std::vector<State> inits = ActionSuccessors::states_satisfying(
      sys.vars, sys.specs.complete.unhidden().init, {});
  ASSERT_FALSE(inits.empty());
  for (const State& s : inits) {
    const std::vector<State> first = gen.successors(s);
    for (int repeat = 0; repeat < 3; ++repeat) {
      EXPECT_EQ(gen.successors(s), first);
    }
  }
}

}  // namespace
}  // namespace opentla
