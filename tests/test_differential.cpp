// Randomized differential harness: ~2000 seeded random small systems, each
// checked three ways against each other —
//
//   1. the serial StateGraph vs the parallel StateGraph (bit-identical:
//      ids, adjacency, initial());
//   2. the graph-based invariant checker's verdict on both graphs;
//   3. the semantic layer: check_validity_bounded's exhaustive lasso
//      enumeration and the independent Oracle must agree with the graph
//      verdict (violations come with a witness the Oracle refutes; a
//      "holds" verdict means no bounded lasso may violate the claim), and
//      random graph walks (random_graph_lasso) must be behaviors of the
//      spec per the Oracle.
//
// A fourth differential axis targets successor generation itself: the
// pruned residual search against the historical enumerate-and-test path
// (behind ActionSuccessors::set_naive_enumeration_for_test), over random
// actions rich in residual constraints. The two paths must produce
// identical successor sequences — the same states in the same emission
// order — and identical enabled() verdicts.
//
// A sixth axis pins the bytecode VM to the tree evaluator (behind
// vm::set_tree_eval_for_test): identical successor sets in identical
// emission order, identical ENABLED results and invariant verdicts, and —
// on random scalar expressions biased toward the trap classes (integer
// overflow, floored-mod domain, unbound locals) — identical values or
// byte-identical error messages.
//
// Every assertion carries the failing seed and case index so a failure is
// reproducible in isolation.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <random>
#include <string>

#include "opentla/analysis/independence.hpp"
#include "opentla/check/invariant.hpp"
#include "opentla/compose/compose.hpp"
#include "opentla/expr/eval.hpp"
#include "opentla/graph/successor.hpp"
#include "opentla/semantics/enumerate.hpp"
#include "opentla/semantics/oracle.hpp"
#include "opentla/vm/compile.hpp"
#include "opentla/vm/interp.hpp"

namespace opentla {
namespace {

constexpr unsigned kSeeds = 8;
constexpr unsigned kCasesPerSeed = 250;  // 8 x 250 = 2000 systems

/// Same tiny-universe generator idiom as test_properties's RandomSpecs:
/// two binary variables, random guarded-assignment specs over them.
class CaseGen {
 public:
  explicit CaseGen(unsigned seed) : rng_(seed) {
    x_ = vars_.declare("x", range_domain(0, 1));
    y_ = vars_.declare("y", range_domain(0, 1));
  }

  VarTable& vars() { return vars_; }
  VarId x() const { return x_; }
  VarId y() const { return y_; }
  std::mt19937& rng() { return rng_; }

  std::int64_t bit() { return std::uniform_int_distribution<int>(0, 1)(rng_); }
  bool coin() { return bit() == 1; }

  Expr predicate(VarId v) { return ex::eq(ex::var(v), ex::integer(bit())); }

  Expr guarded_assign(VarId v, VarId pin) {
    std::vector<Expr> conj;
    if (coin()) conj.push_back(ex::eq(ex::var(v), ex::integer(bit())));
    conj.push_back(ex::eq(ex::primed_var(v), ex::integer(bit())));
    conj.push_back(ex::unchanged({pin}));
    return ex::land(std::move(conj));
  }

  CanonicalSpec spec(VarId v, VarId other, std::string name) {
    CanonicalSpec s;
    s.name = std::move(name);
    s.init = coin() ? ex::top() : predicate(v);
    std::vector<Expr> disjuncts = {guarded_assign(v, other)};
    if (coin()) disjuncts.push_back(guarded_assign(v, other));
    s.next = ex::lor(std::move(disjuncts));
    s.sub = {v};
    return s;
  }

 private:
  VarTable vars_;
  VarId x_ = 0, y_ = 0;
  std::mt19937 rng_;
};

ExploreOptions with_threads(unsigned threads) {
  ExploreOptions opts;
  opts.threads = threads;
  return opts;
}

class DifferentialHarness : public ::testing::TestWithParam<unsigned> {};

TEST_P(DifferentialHarness, SerialParallelAndSemanticVerdictsAgree) {
  const unsigned seed = GetParam();
  CaseGen gen(seed);
  Oracle oracle(gen.vars());

  for (unsigned c = 0; c < kCasesPerSeed; ++c) {
    SCOPED_TRACE("seed=" + std::to_string(seed) + " case=" + std::to_string(c));

    CanonicalSpec sx = gen.spec(gen.x(), gen.y(), "SX");
    CanonicalSpec sy = gen.spec(gen.y(), gen.x(), "SY");
    const std::vector<CompositePart> parts = {{sx, true}, {sy, true}};

    // 1. The parallel engine must reproduce the serial graph bit for bit.
    // Cycle through worker counts so stealing and contention paths vary.
    const unsigned threads = 2u << (c % 3);  // 2, 4, 8
    StateGraph serial = build_composite_graph(gen.vars(), parts, {}, {}, with_threads(1));
    StateGraph parallel =
        build_composite_graph(gen.vars(), parts, {}, {}, with_threads(threads));
    ASSERT_EQ(serial.num_states(), parallel.num_states());
    ASSERT_EQ(serial.num_edges(), parallel.num_edges());
    ASSERT_EQ(serial.initial(), parallel.initial());
    for (StateId s = 0; s < serial.num_states(); ++s) {
      ASSERT_EQ(serial.state(s), parallel.state(s)) << "state id " << s;
      ASSERT_EQ(serial.successors(s), parallel.successors(s)) << "adjacency of " << s;
    }

    // 2. Both graphs yield the same invariant verdict.
    Expr p = ex::lor(gen.predicate(gen.x()), gen.predicate(gen.y()));
    InvariantResult rs = check_invariant(serial, p);
    InvariantResult rp = check_invariant(parallel, p);
    ASSERT_EQ(rs.holds, rp.holds);

    // 3. The semantic layer agrees. The claim: SX /\ SY => [](p).
    Formula claim =
        tf::implies(tf::land(tf::spec(sx), tf::spec(sy)), tf::always(tf::pred(p)));
    if (rs.holds) {
      // No lasso up to the bound may violate a claim the checker proved
      // over the full reachable graph.
      BoundedValidity bv = check_validity_bounded(gen.vars(), claim, /*max_len=*/3);
      EXPECT_TRUE(bv.valid) << (bv.violation ? bv.violation->to_string(gen.vars())
                                             : std::string("(no witness)"));
    } else {
      // The checker's counterexample, closed by stuttering, must refute
      // the claim per the independent oracle.
      LassoBehavior witness(rs.counterexample, rs.counterexample.size() - 1);
      EXPECT_FALSE(oracle.evaluate(claim, witness)) << witness.to_string(gen.vars());
    }

    // Random walks over the (parallel) graph are behaviors of the safety
    // conjunction — the graph adds nothing the specs don't allow.
    if (serial.num_states() > 0 && !serial.initial().empty()) {
      Formula both = tf::land(tf::spec(sx), tf::spec(sy));
      LassoBehavior walk = random_graph_lasso(parallel, gen.rng(), /*max_steps=*/16);
      EXPECT_TRUE(oracle.evaluate(both, walk)) << walk.to_string(gen.vars());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialHarness, ::testing::Range(0u, kSeeds));

/// Random actions over a three-variable universe, biased toward residual
/// constraints (primed-primed comparisons, negative constraints) so the
/// pruned search tree actually has something to cut.
class ActionGen {
 public:
  explicit ActionGen(unsigned seed) : rng_(seed) {
    v_[0] = vars_.declare("x", range_domain(0, 2));
    v_[1] = vars_.declare("y", range_domain(0, 2));
    v_[2] = vars_.declare("z", range_domain(0, 1));
  }

  VarTable& vars() { return vars_; }

  Expr action() {
    const int disjuncts = 1 + pick(2);
    std::vector<Expr> ds;
    for (int i = 0; i < disjuncts; ++i) ds.push_back(disjunct());
    return ex::lor(std::move(ds));
  }

  /// A random non-empty variable pool (each of x, y, z by coin flip).
  std::vector<VarId> pool() {
    std::vector<VarId> p;
    for (VarId v : v_) {
      if (pick(2) == 1) p.push_back(v);
    }
    if (p.empty()) p.push_back(v_[pick(3)]);
    return p;
  }

  /// A component-style action: conjuncts touch only `p`'s variables and
  /// everything outside `p` is framed with UNCHANGED. Two such actions
  /// over disjoint pools have disjoint footprints, so the independence
  /// harness actually gets claimed-independent pairs to refute.
  Expr framed_action(const std::vector<VarId>& p) {
    std::vector<VarId> complement;
    for (VarId v : v_) {
      if (std::find(p.begin(), p.end(), v) == p.end()) complement.push_back(v);
    }
    const int disjuncts = 1 + pick(2);
    std::vector<Expr> ds;
    for (int i = 0; i < disjuncts; ++i) {
      const int n = 1 + pick(3);
      std::vector<Expr> cs;
      for (int j = 0; j < n; ++j) cs.push_back(conjunct_over(p));
      if (!complement.empty()) cs.push_back(ex::unchanged(complement));
      ds.push_back(ex::land(std::move(cs)));
    }
    return ex::lor(std::move(ds));
  }

 private:
  int pick(int n) { return std::uniform_int_distribution<int>(0, n - 1)(rng_); }
  VarId rv() { return v_[pick(3)]; }
  Expr val(VarId v) { return ex::integer(pick(v == v_[2] ? 2 : 3)); }

  Expr conjunct() { return conjunct_over({v_[0], v_[1], v_[2]}); }

  Expr conjunct_over(const std::vector<VarId>& p) {
    const VarId a = p[static_cast<std::size_t>(pick(static_cast<int>(p.size())))];
    const VarId b = p[static_cast<std::size_t>(pick(static_cast<int>(p.size())))];
    switch (pick(6)) {
      case 0: return ex::eq(ex::var(a), val(a));                       // guard
      case 1: return ex::eq(ex::primed_var(a), val(a));                // assignment
      case 2: return ex::neq(ex::primed_var(a), val(a));               // residual, 1 var
      case 3: return ex::neq(ex::primed_var(a), ex::primed_var(b));    // residual, 2 vars
      case 4: return ex::le(ex::primed_var(a), ex::var(b));            // residual, 1 var
      default: return ex::eq(ex::primed_var(a), ex::var(b));           // assignment
    }
  }

  Expr disjunct() {
    const int n = 1 + pick(4);
    std::vector<Expr> cs;
    for (int i = 0; i < n; ++i) cs.push_back(conjunct());
    return ex::land(std::move(cs));
  }

  VarTable vars_;
  VarId v_[3] = {0, 0, 0};
  std::mt19937 rng_;
};

class PrunedVsNaiveHarness : public ::testing::TestWithParam<unsigned> {};

TEST_P(PrunedVsNaiveHarness, IdenticalSuccessorsOrderAndEnabledVerdicts) {
  const unsigned seed = GetParam();
  ActionGen gen(seed);
  StateSpace space(gen.vars());

  for (unsigned c = 0; c < kCasesPerSeed; ++c) {
    SCOPED_TRACE("seed=" + std::to_string(seed) + " case=" + std::to_string(c));
    const Expr act = gen.action();
    ActionSuccessors succ(gen.vars(), act);

    space.for_each_state([&](const State& s) {
      ActionSuccessors::set_naive_enumeration_for_test(true);
      const std::vector<State> naive = succ.successors(s);
      const bool naive_enabled = succ.enabled(s);
      ActionSuccessors::set_naive_enumeration_for_test(false);
      const std::vector<State> pruned = succ.successors(s);
      const bool pruned_enabled = succ.enabled(s);

      // Same states, same emission order: pruning only skips rejected
      // subtrees, it never reorders the survivors.
      ASSERT_EQ(pruned, naive)
          << "action " << act.to_string(gen.vars()) << " at " << s.to_string(gen.vars());
      ASSERT_EQ(pruned_enabled, naive_enabled)
          << "action " << act.to_string(gen.vars()) << " at " << s.to_string(gen.vars());
      ASSERT_EQ(pruned_enabled, !pruned.empty());

      // Spot-check against direct action evaluation on a prefix of the
      // space (the full cross-product on every case would dominate runtime).
      if (c % 50 == 0) {
        std::vector<State> expected;
        space.for_each_state([&](const State& t) {
          if (eval_action(act, gen.vars(), s, t)) expected.push_back(t);
        });
        std::vector<State> got = pruned;
        auto lt = [&](const State& a, const State& b) {
          return a.to_string(gen.vars()) < b.to_string(gen.vars());
        };
        std::sort(expected.begin(), expected.end(), lt);
        std::sort(got.begin(), got.end(), lt);
        ASSERT_EQ(got, expected) << "action " << act.to_string(gen.vars());
      }
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrunedVsNaiveHarness, ::testing::Range(0u, kSeeds));

/// Fifth differential axis: the static independence relation against
/// brute-force commutation. For random component-style action pairs, every
/// pair the footprint analysis claims independent must exhibit the diamond
/// property from EVERY state of the 18-state universe — executing A then B
/// and B then A yield the same successor-state sets, and when both are
/// enabled, neither step disables the other. A single violation would be a
/// false independence claim (unsound partial-order reduction); the
/// acceptance bar is zero.
class PairIndependenceHarness : public ::testing::TestWithParam<unsigned> {};

TEST_P(PairIndependenceHarness, ClaimedIndependentPairsCommuteFromEveryState) {
  const unsigned seed = GetParam();
  ActionGen gen(seed);
  StateSpace space(gen.vars());
  const std::vector<VarId> scope = gen.vars().all_vars();

  unsigned claimed_independent = 0;
  for (unsigned c = 0; c < kCasesPerSeed; ++c) {
    SCOPED_TRACE("seed=" + std::to_string(seed) + " case=" + std::to_string(c));
    const Expr a = gen.framed_action(gen.pool());
    const Expr b = gen.framed_action(gen.pool());
    const analysis::Footprint fa = analysis::action_footprint(a, scope);
    const analysis::Footprint fb = analysis::action_footprint(b, scope);
    const analysis::PairVerdict v =
        analysis::pair_independence(gen.vars(), "A", fa, "B", fb);
    if (!v.independent) continue;
    ++claimed_independent;

    ActionSuccessors sa(gen.vars(), a);
    ActionSuccessors sb(gen.vars(), b);
    space.for_each_state([&](const State& s) {
      auto image = [&](const ActionSuccessors& first, const ActionSuccessors& second) {
        std::vector<State> out;
        for (const State& t : first.successors(s)) {
          for (const State& u : second.successors(t)) out.push_back(u);
        }
        std::sort(out.begin(), out.end(), [&](const State& l, const State& r) {
          return l.to_string(gen.vars()) < r.to_string(gen.vars());
        });
        out.erase(std::unique(out.begin(), out.end()), out.end());
        return out;
      };
      ASSERT_EQ(image(sa, sb), image(sb, sa))
          << "A = " << a.to_string(gen.vars()) << "\nB = " << b.to_string(gen.vars())
          << "\nat " << s.to_string(gen.vars());
      if (sa.enabled(s) && sb.enabled(s)) {
        for (const State& t : sa.successors(s)) {
          ASSERT_TRUE(sb.enabled(t)) << "A disables B at " << t.to_string(gen.vars());
        }
        for (const State& t : sb.successors(s)) {
          ASSERT_TRUE(sa.enabled(t)) << "B disables A at " << t.to_string(gen.vars());
        }
      }
    });
  }
  // Non-vacuity: disjoint pools are common enough that every seed must
  // yield claimed-independent pairs to actually exercise the check.
  EXPECT_GT(claimed_independent, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairIndependenceHarness, ::testing::Range(0u, kSeeds));

/// Sixth differential axis: the bytecode VM against the tree evaluator.
/// Toggling vm::set_tree_eval_for_test re-runs identical workloads through
/// the other evaluator; every observable must be bit-identical.
class VmVsTreeHarness : public ::testing::TestWithParam<unsigned> {};

/// RAII toggle so an ASSERT early-exit can't leave the global switch set.
struct ForceTreeEval {
  explicit ForceTreeEval(bool tree) { vm::set_tree_eval_for_test(tree); }
  ~ForceTreeEval() { vm::set_tree_eval_for_test(false); }
};

TEST_P(VmVsTreeHarness, IdenticalSuccessorsEnabledAndInvariantVerdicts) {
  const unsigned seed = GetParam();
  ActionGen gen(seed);
  StateSpace space(gen.vars());

  for (unsigned c = 0; c < kCasesPerSeed; ++c) {
    SCOPED_TRACE("seed=" + std::to_string(seed) + " case=" + std::to_string(c));
    const Expr act = gen.action();
    ActionSuccessors succ(gen.vars(), act);

    space.for_each_state([&](const State& s) {
      std::vector<State> tree_succ;
      bool tree_enabled = false;
      {
        ForceTreeEval force(true);
        tree_succ = succ.successors(s);
        tree_enabled = succ.enabled(s);
      }
      const std::vector<State> vm_succ = succ.successors(s);
      const bool vm_enabled = succ.enabled(s);
      // Same states in the same emission order — the evaluator switch must
      // not change which completions survive or when they are emitted.
      ASSERT_EQ(vm_succ, tree_succ)
          << "action " << act.to_string(gen.vars()) << " at " << s.to_string(gen.vars());
      ASSERT_EQ(vm_enabled, tree_enabled)
          << "action " << act.to_string(gen.vars()) << " at " << s.to_string(gen.vars());
    });
  }

  // Invariant verdicts over random two-variable systems: the checker's
  // CompiledExpr must reach the same verdict (and counterexample) both ways.
  CaseGen cg(seed ^ 0x9e3779b9u);
  for (unsigned c = 0; c < kCasesPerSeed / 10; ++c) {
    SCOPED_TRACE("invariant seed=" + std::to_string(seed) + " case=" + std::to_string(c));
    CanonicalSpec sx = cg.spec(cg.x(), cg.y(), "SX");
    CanonicalSpec sy = cg.spec(cg.y(), cg.x(), "SY");
    const std::vector<CompositePart> parts = {{sx, true}, {sy, true}};
    const StateGraph g = build_composite_graph(cg.vars(), parts, {}, {}, {});
    const Expr p = ex::lor(cg.predicate(cg.x()), cg.predicate(cg.y()));
    InvariantResult tree_r;
    {
      ForceTreeEval force(true);
      tree_r = check_invariant(g, p);
    }
    const InvariantResult vm_r = check_invariant(g, p);
    ASSERT_EQ(vm_r.holds, tree_r.holds) << p.to_string(cg.vars());
    ASSERT_EQ(vm_r.counterexample, tree_r.counterexample);
  }
}

/// Random scalar expressions biased toward the trap classes. Leaves pull
/// from extreme constants so overflow is common; `mod` draws divisors from
/// {-1, 0, positive} so the floored-mod domain error fires; a rare free
/// local exercises the unbound-variable error.
class ScalarExprGen {
 public:
  explicit ScalarExprGen(unsigned seed) : rng_(seed) {
    x_ = vars_.declare("x", range_domain(0, 2));
    y_ = vars_.declare("y", range_domain(0, 2));
  }

  VarTable& vars() { return vars_; }

  Expr expr(int depth) {
    if (depth <= 0) return leaf();
    switch (pick(8)) {
      case 0: return ex::add(expr(depth - 1), expr(depth - 1));
      case 1: return ex::sub(expr(depth - 1), expr(depth - 1));
      case 2: return ex::mul(expr(depth - 1), expr(depth - 1));
      case 3: return ex::mod(expr(depth - 1), expr(depth - 1));
      case 4: return ex::neg(expr(depth - 1));
      case 5:
        return ex::ite(ex::le(expr(depth - 1), expr(depth - 1)),
                       expr(depth - 1), expr(depth - 1));
      case 6:
        return ex::index(ex::make_tuple({expr(depth - 1), expr(depth - 1)}),
                         expr(depth - 1));
      default: return leaf();
    }
  }

 private:
  int pick(int n) { return std::uniform_int_distribution<int>(0, n - 1)(rng_); }

  Expr leaf() {
    switch (pick(10)) {
      case 0: return ex::var(x_);
      case 1: return ex::var(y_);
      case 2: return ex::integer(std::numeric_limits<std::int64_t>::max());
      case 3: return ex::integer(std::numeric_limits<std::int64_t>::min());
      case 4: return ex::integer(-1);
      case 5: return ex::integer(0);
      case 6: return ex::local("free");  // always unbound: closed contract
      default: return ex::integer(pick(4));
    }
  }

  VarTable vars_;
  VarId x_ = 0, y_ = 0;
  std::mt19937 rng_;
};

TEST_P(VmVsTreeHarness, IdenticalValuesAndErrorMessagesOnRandomScalars) {
  const unsigned seed = GetParam();
  ScalarExprGen gen(seed);
  const State s({Value::integer(1), Value::integer(2)});

  for (unsigned c = 0; c < kCasesPerSeed * 4; ++c) {
    SCOPED_TRACE("seed=" + std::to_string(seed) + " case=" + std::to_string(c));
    const Expr e = gen.expr(4);

    EvalContext tctx;
    tctx.vars = &gen.vars();
    tctx.current = &s;
    Value tree_val;
    std::string tree_err;
    try {
      tree_val = eval(e, tctx);
    } catch (const std::runtime_error& ex) {
      tree_err = ex.what();
    }

    vm::VmContext vctx;
    vctx.vars = &gen.vars();
    vctx.current = &s;
    Value vm_val;
    std::string vm_err;
    try {
      vm_val = vm::run(vm::compile(e), vctx);
    } catch (const std::runtime_error& ex) {
      vm_err = ex.what();
    }

    // Byte-identical error messages (trap class AND operand rendering), or
    // equal values; never an error on one side only.
    ASSERT_EQ(vm_err, tree_err) << e.to_string(gen.vars());
    if (tree_err.empty()) {
      ASSERT_TRUE(vm_val == tree_val)
          << e.to_string(gen.vars()) << " tree=" << tree_val.to_string()
          << " vm=" << vm_val.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VmVsTreeHarness, ::testing::Range(0u, kSeeds));

}  // namespace
}  // namespace opentla
