// Unit tests for explicit-state graphs, SCCs, and the fair-cycle engine
// (opentla/graph).

#include <gtest/gtest.h>

#include "opentla/check/liveness.hpp"
#include "opentla/graph/fair_cycle.hpp"
#include "opentla/graph/scc.hpp"
#include "opentla/graph/state_graph.hpp"
#include "opentla/graph/successor.hpp"

namespace opentla {
namespace {

// A counter modulo 4 with an explicit wrap step.
class CounterGraphTest : public ::testing::Test {
 protected:
  CounterGraphTest() : x(vars.declare("x", range_domain(0, 3))) {
    up = ex::land(ex::lt(ex::var(x), ex::integer(3)),
                  ex::eq(ex::primed_var(x), ex::add(ex::var(x), ex::integer(1))));
    wrap = ex::land(ex::eq(ex::var(x), ex::integer(3)),
                    ex::eq(ex::primed_var(x), ex::integer(0)));
  }

  StateGraph build(Expr next, bool self_loops = true) {
    ActionSuccessors gen(vars, std::move(next));
    return StateGraph(
        vars, {State({Value::integer(0)})},
        [&gen](const State& s, const std::function<void(const State&)>& emit) {
          gen.for_each_successor(s, emit);
        },
        self_loops);
  }

  VarTable vars;
  VarId x;
  Expr up, wrap;
};

TEST_F(CounterGraphTest, ReachabilityAndSelfLoops) {
  StateGraph g = build(ex::lor(up, wrap));
  EXPECT_EQ(g.num_states(), 4u);
  // Each state: one action successor plus its stuttering self-loop.
  for (StateId s = 0; s < g.num_states(); ++s) {
    EXPECT_EQ(g.successors(s).size(), 2u);
  }
}

TEST_F(CounterGraphTest, UnreachableStatesAreNotExplored) {
  StateGraph g = build(up);  // no wrap: 0 -> 1 -> 2 -> 3
  EXPECT_EQ(g.num_states(), 4u);
  StateGraph g2(vars, {State({Value::integer(2)})},
                [this](const State& s, const std::function<void(const State&)>& emit) {
                  ActionSuccessors gen(vars, up);
                  gen.for_each_successor(s, emit);
                });
  EXPECT_EQ(g2.num_states(), 2u);  // 2 and 3 only
}

TEST_F(CounterGraphTest, ShortestPath) {
  StateGraph g = build(ex::lor(up, wrap));
  std::vector<StateId> path =
      g.shortest_path_to([&](StateId s) { return g.state(s)[x].as_int() == 3; });
  ASSERT_EQ(path.size(), 4u);
  EXPECT_EQ(g.state(path[0])[x].as_int(), 0);
  EXPECT_EQ(g.state(path[3])[x].as_int(), 3);
}

TEST_F(CounterGraphTest, StateLimitStopsGracefully) {
  ActionSuccessors gen(vars, ex::lor(up, wrap));
  auto succ = [&gen](const State& s, const std::function<void(const State&)>& emit) {
    gen.for_each_successor(s, emit);
  };
  StateGraph g(vars, {State({Value::integer(0)})}, succ, true, /*max_states=*/2);
  EXPECT_EQ(g.num_states(), 2u);
  EXPECT_EQ(g.stop_reason(), run::StopReason::kStateBudget);
}

TEST_F(CounterGraphTest, SccOfCycleIsOneComponent) {
  StateGraph g = build(ex::lor(up, wrap));
  SubgraphFilter all;
  std::vector<StateId> roots(g.num_states());
  for (std::size_t i = 0; i < roots.size(); ++i) roots[i] = static_cast<StateId>(i);
  std::vector<std::vector<StateId>> comps = strongly_connected_components(g, roots, all);
  ASSERT_EQ(comps.size(), 1u);
  EXPECT_EQ(comps[0].size(), 4u);
  EXPECT_TRUE(component_has_cycle(g, comps[0], all));
}

TEST_F(CounterGraphTest, SccOfChainIsSingletons) {
  StateGraph g = build(up, /*self_loops=*/false);
  SubgraphFilter all;
  std::vector<StateId> roots(g.num_states());
  for (std::size_t i = 0; i < roots.size(); ++i) roots[i] = static_cast<StateId>(i);
  std::vector<std::vector<StateId>> comps = strongly_connected_components(g, roots, all);
  EXPECT_EQ(comps.size(), 4u);
  for (const auto& c : comps) EXPECT_FALSE(component_has_cycle(g, c, all));
}

TEST_F(CounterGraphTest, EdgeFilterCutsCycle) {
  StateGraph g = build(ex::lor(up, wrap), /*self_loops=*/false);
  SubgraphFilter no_wrap;
  no_wrap.edge_ok = [&](StateId s, StateId t) {
    return !(g.state(s)[x].as_int() == 3 && g.state(t)[x].as_int() == 0);
  };
  std::vector<StateId> roots(g.num_states());
  for (std::size_t i = 0; i < roots.size(); ++i) roots[i] = static_cast<StateId>(i);
  for (const auto& c : strongly_connected_components(g, roots, no_wrap)) {
    EXPECT_FALSE(component_has_cycle(g, c, no_wrap));
  }
}

TEST_F(CounterGraphTest, FairCycleWithoutObligationsFindsAnyCycle) {
  StateGraph g = build(ex::lor(up, wrap));
  FairCycleQuery q;
  std::optional<Lasso> lasso = find_fair_cycle(g, q);
  ASSERT_TRUE(lasso.has_value());
  EXPECT_FALSE(lasso->cycle.empty());
  EXPECT_FALSE(lasso->prefix.empty());
  EXPECT_EQ(lasso->prefix.back(), lasso->cycle.front());
}

TEST_F(CounterGraphTest, BuchiObligationSteersCycle) {
  StateGraph g = build(ex::lor(up, wrap));
  FairCycleQuery q;
  BuchiObligation visit3;
  visit3.state_ok = [&](StateId s) { return g.state(s)[x].as_int() == 3; };
  q.buchi.push_back(visit3);
  std::optional<Lasso> lasso = find_fair_cycle(g, q);
  ASSERT_TRUE(lasso.has_value());
  bool visits = false;
  for (StateId s : lasso->cycle) visits |= (g.state(s)[x].as_int() == 3);
  EXPECT_TRUE(visits);
}

TEST_F(CounterGraphTest, BuchiObligationCanBeUnsatisfiable) {
  StateGraph g = build(up);  // chain: only self-loop cycles
  FairCycleQuery q;
  BuchiObligation step;
  // Require an x-changing step infinitely often: impossible on self-loops.
  step.step_ok = [&](StateId s, StateId t) {
    return g.state(s)[x].as_int() != g.state(t)[x].as_int();
  };
  q.buchi.push_back(step);
  EXPECT_FALSE(find_fair_cycle(g, q).has_value());
}

TEST_F(CounterGraphTest, WeakFairnessConstraintExcludesStutterCycles) {
  // WF on the counter action: a fair behavior cannot stutter forever while
  // the action is enabled, so the only fair cycle is the full loop.
  StateGraph g = build(ex::lor(up, wrap));
  FairnessCompiler compiler(g);
  FairCycleQuery q;
  Fairness wf;
  wf.kind = Fairness::Kind::Weak;
  wf.sub = {x};
  wf.action = ex::lor(up, wrap);
  compiler.add_constraints({wf}, q);
  std::optional<Lasso> lasso = find_fair_cycle(g, q);
  ASSERT_TRUE(lasso.has_value());
  EXPECT_EQ(lasso->cycle.size(), 4u);
}

TEST_F(CounterGraphTest, StreettConstraint) {
  // SF(wrap): any cycle visiting x = 3 infinitely often must take the wrap
  // step infinitely often. The self-loop at 3 alone is excluded, but the
  // full loop (which wraps) is allowed.
  StateGraph g = build(ex::lor(up, wrap));
  FairnessCompiler compiler(g);
  FairCycleQuery q;
  Fairness sf;
  sf.kind = Fairness::Kind::Strong;
  sf.sub = {x};
  sf.action = wrap;
  compiler.add_constraints({sf}, q);
  // Restrict to the subgraph containing only state 3 and its self-loop:
  q.filter.node_ok = [&](StateId s) { return g.state(s)[x].as_int() == 3; };
  EXPECT_FALSE(find_fair_cycle(g, q).has_value());
  // Unrestricted, the wrap cycle satisfies SF.
  FairCycleQuery q2;
  FairnessCompiler compiler2(g);
  Fairness sf2 = sf;
  compiler2.add_constraints({sf2}, q2);
  EXPECT_TRUE(find_fair_cycle(g, q2).has_value());
}

TEST_F(CounterGraphTest, ViolationSearchForWeakFairness) {
  // Search for a cycle violating WF(up \/ wrap): every state enabled, no
  // action step — i.e. a pure stutter cycle. It exists (self-loops).
  StateGraph g = build(ex::lor(up, wrap));
  FairnessCompiler compiler(g);
  FairCycleQuery q;
  Fairness wf;
  wf.kind = Fairness::Kind::Weak;
  wf.sub = {x};
  wf.action = ex::lor(up, wrap);
  compiler.restrict_to_violation(wf, q);
  std::optional<Lasso> lasso = find_fair_cycle(g, q);
  ASSERT_TRUE(lasso.has_value());
  EXPECT_EQ(lasso->cycle.size(), 1u);  // a self-loop
}

}  // namespace
}  // namespace opentla
