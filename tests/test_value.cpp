// Unit tests for the TLA value universe (opentla/value).

#include <gtest/gtest.h>

#include <unordered_set>

#include "opentla/value/domain.hpp"
#include "opentla/value/value.hpp"

namespace opentla {
namespace {

TEST(Value, DefaultIsFalse) {
  Value v;
  EXPECT_TRUE(v.is_bool());
  EXPECT_FALSE(v.as_bool());
}

TEST(Value, KindsAndAccessors) {
  EXPECT_TRUE(Value::boolean(true).as_bool());
  EXPECT_EQ(Value::integer(-7).as_int(), -7);
  EXPECT_EQ(Value::string("hi").as_string(), "hi");
  EXPECT_EQ(Value::tuple({Value::integer(1)}).as_tuple().size(), 1u);
}

TEST(Value, AccessorThrowsOnKindMismatch) {
  EXPECT_THROW(Value::integer(1).as_bool(), std::runtime_error);
  EXPECT_THROW(Value::boolean(true).as_int(), std::runtime_error);
  EXPECT_THROW(Value::integer(1).as_tuple(), std::runtime_error);
  EXPECT_THROW(Value::tuple({}).as_string(), std::runtime_error);
}

TEST(Value, EqualityIsStructural) {
  EXPECT_EQ(Value::tuple({Value::integer(1), Value::integer(2)}),
            Value::tuple({Value::integer(1), Value::integer(2)}));
  EXPECT_FALSE(Value::tuple({Value::integer(1)}) == Value::tuple({Value::integer(2)}));
  EXPECT_FALSE(Value::integer(0) == Value::boolean(false));
}

TEST(Value, TotalOrderAcrossKinds) {
  // Bool < Int < String < Tuple by kind index.
  EXPECT_LT(Value::boolean(true), Value::integer(0));
  EXPECT_LT(Value::integer(100), Value::string(""));
  EXPECT_LT(Value::string("zzz"), Value::tuple({}));
}

TEST(Value, TupleOrderIsLexicographic) {
  EXPECT_LT(Value::tuple({}), Value::tuple({Value::integer(0)}));
  EXPECT_LT(Value::tuple({Value::integer(0)}),
            Value::tuple({Value::integer(0), Value::integer(0)}));
  EXPECT_LT(Value::tuple({Value::integer(0), Value::integer(5)}),
            Value::tuple({Value::integer(1)}));
}

TEST(Value, HashAgreesWithEquality) {
  Value a = Value::tuple({Value::integer(3), Value::string("x")});
  Value b = Value::tuple({Value::integer(3), Value::string("x")});
  EXPECT_EQ(a.hash(), b.hash());
  std::unordered_set<Value, ValueHash> set;
  set.insert(a);
  set.insert(b);
  EXPECT_EQ(set.size(), 1u);
}

TEST(Value, Printing) {
  EXPECT_EQ(Value::boolean(true).to_string(), "TRUE");
  EXPECT_EQ(Value::integer(-3).to_string(), "-3");
  EXPECT_EQ(Value::string("q").to_string(), "\"q\"");
  EXPECT_EQ(Value::tuple({Value::integer(1), Value::integer(2)}).to_string(), "<<1, 2>>");
  EXPECT_EQ(Value::empty_seq().to_string(), "<<>>");
}

TEST(Value, SequenceOperations) {
  Value s = Value::tuple({Value::integer(1), Value::integer(2), Value::integer(3)});
  EXPECT_EQ(seq_head(s), Value::integer(1));
  EXPECT_EQ(seq_tail(s), Value::tuple({Value::integer(2), Value::integer(3)}));
  EXPECT_EQ(seq_append(Value::empty_seq(), Value::integer(9)),
            Value::tuple({Value::integer(9)}));
  EXPECT_EQ(seq_concat(seq_tail(s), Value::tuple({Value::integer(1)})),
            Value::tuple({Value::integer(2), Value::integer(3), Value::integer(1)}));
  EXPECT_THROW(seq_head(Value::empty_seq()), std::runtime_error);
  EXPECT_THROW(seq_tail(Value::empty_seq()), std::runtime_error);
}

TEST(Domain, SortedAndDeduplicated) {
  Domain d({Value::integer(3), Value::integer(1), Value::integer(3)});
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0], Value::integer(1));
  EXPECT_EQ(d[1], Value::integer(3));
  EXPECT_TRUE(d.contains(Value::integer(3)));
  EXPECT_FALSE(d.contains(Value::integer(2)));
  EXPECT_EQ(d.index_of(Value::integer(3)), 1u);
  EXPECT_THROW(d.index_of(Value::integer(7)), std::runtime_error);
}

TEST(Domain, Builders) {
  EXPECT_EQ(bool_domain().size(), 2u);
  EXPECT_EQ(bit_domain().size(), 2u);
  EXPECT_EQ(range_domain(2, 5).size(), 4u);
  EXPECT_TRUE(range_domain(5, 2).empty());
}

TEST(Domain, SeqDomainCountsAllLengths) {
  // 1 + 2 + 4 + 8 sequences over two values up to length 3.
  Domain d = seq_domain(range_domain(0, 1), 3);
  EXPECT_EQ(d.size(), 15u);
  EXPECT_TRUE(d.contains(Value::empty_seq()));
  EXPECT_TRUE(d.contains(Value::tuple({Value::integer(1), Value::integer(0)})));
  EXPECT_FALSE(d.contains(Value::tuple(
      {Value::integer(0), Value::integer(0), Value::integer(0), Value::integer(0)})));
}

TEST(Domain, TupleDomainIsCartesianProduct) {
  Domain d = tuple_domain({range_domain(0, 1), range_domain(0, 2)});
  EXPECT_EQ(d.size(), 6u);
  EXPECT_TRUE(d.contains(Value::tuple({Value::integer(1), Value::integer(2)})));
}

}  // namespace
}  // namespace opentla
