// Unit tests for the lasso-behavior oracle — the exact semantics of every
// temporal operator, including the paper's +> / -> / _|_ / +v / closure
// (opentla/semantics).

#include <gtest/gtest.h>

#include <random>

#include "opentla/semantics/enumerate.hpp"
#include "opentla/semantics/oracle.hpp"

namespace opentla {
namespace {

class OracleTest : public ::testing::Test {
 protected:
  OracleTest() : x(vars.declare("x", range_domain(0, 1))) {}

  State st(std::int64_t v) { return State({Value::integer(v)}); }

  LassoBehavior lasso(std::vector<std::int64_t> values, std::size_t loop) {
    std::vector<State> states;
    for (std::int64_t v : values) states.push_back(st(v));
    return LassoBehavior(std::move(states), loop);
  }

  Expr is(std::int64_t v) { return ex::eq(ex::var(x), ex::integer(v)); }

  VarTable vars;
  VarId x;
};

TEST_F(OracleTest, LassoPositions) {
  LassoBehavior b = lasso({0, 1, 0}, 1);  // 0 (1 0)^omega
  EXPECT_EQ(b.at(0)[0].as_int(), 0);
  EXPECT_EQ(b.at(3)[0].as_int(), 1);  // wraps: position 3 = loop start
  EXPECT_EQ(b.at(4)[0].as_int(), 0);
  EXPECT_EQ(b.successor(2), 1u);
  EXPECT_EQ(b.loop_length(), 2u);
}

TEST_F(OracleTest, PredAlwaysEventually) {
  Oracle oracle(vars);
  LassoBehavior b = lasso({0, 1, 0}, 1);
  EXPECT_TRUE(oracle.evaluate(tf::pred(is(0)), b));
  EXPECT_FALSE(oracle.evaluate(tf::pred(is(1)), b));
  EXPECT_TRUE(oracle.evaluate(tf::eventually(tf::pred(is(1))), b));
  EXPECT_FALSE(oracle.evaluate(tf::always(tf::pred(is(0))), b));
  EXPECT_TRUE(oracle.evaluate(tf::always(tf::eventually(tf::pred(is(1)))), b));
  // Suffix evaluation: from position 1 the behavior alternates.
  EXPECT_TRUE(oracle.evaluate_at(tf::pred(is(1)), b, 1));

  LassoBehavior constant = lasso({0}, 0);
  EXPECT_TRUE(oracle.evaluate(tf::always(tf::pred(is(0))), constant));
  EXPECT_FALSE(oracle.evaluate(tf::eventually(tf::pred(is(1))), constant));
}

TEST_F(OracleTest, ActionBox) {
  Oracle oracle(vars);
  Formula never_changes = tf::action_box(ex::bottom(), {x});
  EXPECT_TRUE(oracle.evaluate(never_changes, lasso({0}, 0)));
  EXPECT_FALSE(oracle.evaluate(never_changes, lasso({0, 1}, 1)));
  // [][x' = 1 - x]_x: every change flips.
  Formula flips = tf::action_box(
      ex::eq(ex::primed_var(x), ex::sub(ex::integer(1), ex::var(x))), {x});
  EXPECT_TRUE(oracle.evaluate(flips, lasso({0, 1, 0}, 1)));
  EXPECT_TRUE(oracle.evaluate(flips, lasso({0, 0, 1}, 2)));  // stutters allowed
}

TEST_F(OracleTest, BooleanConnectives) {
  Oracle oracle(vars);
  LassoBehavior b = lasso({0, 1}, 1);
  Formula p0 = tf::pred(is(0));
  Formula p1 = tf::pred(is(1));
  EXPECT_TRUE(oracle.evaluate(tf::lor(p0, p1), b));
  EXPECT_FALSE(oracle.evaluate(tf::land(p0, p1), b));
  EXPECT_TRUE(oracle.evaluate(tf::lnot(p1), b));
  EXPECT_TRUE(oracle.evaluate(tf::implies(p1, p0), b));
  EXPECT_FALSE(oracle.evaluate(tf::equiv(p0, p1), b));
}

TEST_F(OracleTest, WeakFairness) {
  Oracle oracle(vars);
  // Action: set x to 1 (enabled iff x = 0).
  Expr set1 = ex::land(ex::eq(ex::var(x), ex::integer(0)),
                       ex::eq(ex::primed_var(x), ex::integer(1)));
  Formula wf = tf::weak_fair({x}, set1);
  // Stuck at 0 forever with the action enabled: WF violated.
  EXPECT_FALSE(oracle.evaluate(wf, lasso({0}, 0)));
  // Ends at 1: action disabled in the loop, WF satisfied.
  EXPECT_TRUE(oracle.evaluate(wf, lasso({0, 1}, 1)));
  // Keeps taking the step: satisfied.
  EXPECT_TRUE(oracle.evaluate(wf, lasso({0, 1, 0}, 0)));
}

TEST_F(OracleTest, StrongVersusWeakFairness) {
  Oracle oracle(vars);
  Expr set1 = ex::land(ex::eq(ex::var(x), ex::integer(0)),
                       ex::eq(ex::primed_var(x), ex::integer(1)));
  // Loop 0 -> 1 -> 0 -> ... : set1 is enabled at 0 and disabled at 1, and
  // the loop includes a genuine 0 -> 1 step. Now consider the loop
  // 0 -> 0' -> 0 that never takes set1: for WF the disabled state would be
  // needed, but x = 0 everywhere keeps it enabled, so WF fails; SF fails
  // too (enabled infinitely often, never taken).
  Formula wf = tf::weak_fair({x}, set1);
  Formula sf = tf::strong_fair({x}, set1);
  EXPECT_FALSE(oracle.evaluate(wf, lasso({0, 0}, 0)));
  EXPECT_FALSE(oracle.evaluate(sf, lasso({0, 0}, 0)));
  // Alternating 0/1 with the 0 -> 1 edge an actual set1 step satisfies both.
  EXPECT_TRUE(oracle.evaluate(wf, lasso({0, 1}, 0)));
  EXPECT_TRUE(oracle.evaluate(sf, lasso({0, 1}, 0)));
  // A loop that visits 1 only (set1 never enabled): both hold vacuously.
  EXPECT_TRUE(oracle.evaluate(wf, lasso({1}, 0)));
  EXPECT_TRUE(oracle.evaluate(sf, lasso({1}, 0)));
}

// The canonical spec "x starts 0, may be set to 1 once, WF forces it":
// EventuallyOne == x = 0 /\ [][x = 0 /\ x' = 1]_x /\ WF_x(x = 0 /\ x' = 1).
class SpecOracleTest : public OracleTest {
 protected:
  SpecOracleTest() {
    Expr set1 = ex::land(ex::eq(ex::var(x), ex::integer(0)),
                         ex::eq(ex::primed_var(x), ex::integer(1)));
    spec.name = "EventuallyOne";
    spec.init = ex::eq(ex::var(x), ex::integer(0));
    spec.next = set1;
    spec.sub = {x};
    Fairness wf;
    wf.kind = Fairness::Kind::Weak;
    wf.sub = {x};
    wf.action = spec.next;
    wf.label = "WF(set1)";
    spec.fairness.push_back(wf);
  }
  CanonicalSpec spec;
};

TEST_F(SpecOracleTest, SpecEvaluation) {
  Oracle oracle(vars);
  Formula f = tf::spec(spec);
  EXPECT_TRUE(oracle.evaluate(f, lasso({0, 1}, 1)));
  EXPECT_TRUE(oracle.evaluate(f, lasso({0, 0, 1}, 2)));
  // Stuck at 0: safety fine but fairness violated.
  EXPECT_FALSE(oracle.evaluate(f, lasso({0}, 0)));
  // Wrong initial state.
  EXPECT_FALSE(oracle.evaluate(f, lasso({1}, 0)));
  // Changing back 1 -> 0 violates the next-state relation.
  EXPECT_FALSE(oracle.evaluate(f, lasso({0, 1, 0}, 0)));
}

TEST_F(SpecOracleTest, ClosureDropsFairness) {
  Oracle oracle(vars);
  Formula c = tf::closure(spec);
  // The stuck-at-0 behavior satisfies the closure but not the spec.
  EXPECT_TRUE(oracle.evaluate(c, lasso({0}, 0)));
  EXPECT_FALSE(oracle.evaluate(c, lasso({1}, 0)));
  EXPECT_FALSE(oracle.evaluate(c, lasso({0, 1, 0}, 0)));
  // F => C(F) on every behavior we can build here.
  for (const auto& b : {lasso({0, 1}, 1), lasso({0}, 0), lasso({1}, 0)}) {
    EXPECT_TRUE(!oracle.evaluate(tf::spec(spec), b) || oracle.evaluate(c, b));
  }
}

TEST_F(SpecOracleTest, SpecWithHiddenVariable) {
  // EE h : h counts 0,1,2 invisibly, then x flips. On the visible lasso
  // 0,0,0,1 the witness exists; on 0,1 it does not.
  VarTable vars2;
  VarId xf = vars2.declare("x", range_domain(0, 1));
  VarId h = vars2.declare("h", range_domain(0, 2));
  CanonicalSpec hidden_spec;
  hidden_spec.name = "HiddenCount";
  hidden_spec.init = ex::land(ex::eq(ex::var(xf), ex::integer(0)),
                              ex::eq(ex::var(h), ex::integer(0)));
  Expr tick = ex::land(ex::lt(ex::var(h), ex::integer(2)),
                       ex::eq(ex::primed_var(h), ex::add(ex::var(h), ex::integer(1))),
                       ex::unchanged({xf}));
  Expr flip = ex::land(ex::eq(ex::var(h), ex::integer(2)),
                       ex::eq(ex::primed_var(xf), ex::integer(1)), ex::unchanged({h}));
  hidden_spec.next = ex::lor(tick, flip);
  hidden_spec.sub = {xf, h};
  hidden_spec.hidden = {h};

  Oracle oracle(vars2);
  auto visible = [&](std::vector<std::int64_t> xs, std::size_t loop) {
    std::vector<State> states;
    for (std::int64_t v : xs) states.push_back(State({Value::integer(v), Value::integer(0)}));
    return LassoBehavior(std::move(states), loop);
  };
  Formula f = tf::spec(hidden_spec);
  EXPECT_TRUE(oracle.evaluate(f, visible({0, 0, 0, 1}, 3)));
  EXPECT_FALSE(oracle.evaluate(f, visible({0, 1}, 1)));
  EXPECT_TRUE(oracle.evaluate(f, visible({0}, 0)));  // h may tick forever? no
  // (h can stutter forever at 0 within [][N]_v, so the all-stutter visible
  // behavior has a witness.)
}

class WhilePlusOracleTest : public OracleTest {
 protected:
  WhilePlusOracleTest() {
    // E: x never changes from 0. M: x never changes from 0 (same shape).
    e.name = "E0";
    e.init = ex::eq(ex::var(x), ex::integer(0));
    e.next = ex::bottom();
    e.sub = {x};
    m = e;
    m.name = "M0";
  }
  CanonicalSpec e, m;
};

TEST_F(WhilePlusOracleTest, WhilePlusOneStepLonger) {
  Oracle oracle(vars);
  // y does not exist: E and M both watch x, so a single step falsifies
  // both at once; E +> M then fails while E -> M holds.
  Formula wp = tf::while_plus(e, m);
  Formula aw = tf::arrow_while(e, m);
  LassoBehavior good = lasso({0}, 0);
  EXPECT_TRUE(oracle.evaluate(wp, good));
  EXPECT_TRUE(oracle.evaluate(aw, good));
  LassoBehavior breaks = lasso({0, 1}, 1);
  EXPECT_FALSE(oracle.evaluate(wp, breaks));  // M must outlast E by one step
  EXPECT_TRUE(oracle.evaluate(aw, breaks));   // "as long as" is satisfied
  // Orthogonality distinguishes them (Section 4.2).
  EXPECT_FALSE(oracle.evaluate(tf::orthogonal(e, m), breaks));
  EXPECT_TRUE(oracle.evaluate(tf::orthogonal(e, m), good));
}

TEST_F(WhilePlusOracleTest, WhilePlusRequiresInitialGuarantee) {
  Oracle oracle(vars);
  // Behavior starting at x = 1: E fails from the start (n = 0 gives no
  // obligation), but M must hold for the first 1 state — it does not.
  EXPECT_FALSE(oracle.evaluate(tf::while_plus(e, m), lasso({1}, 0)));
  // E -> M has no such obligation at n = 0... but E => M: E is false, so
  // the implication part holds, and all n >= 1 have E failing.
  EXPECT_TRUE(oracle.evaluate(tf::arrow_while(e, m), lasso({1}, 0)));
}

TEST_F(WhilePlusOracleTest, SectionFourIdentity) {
  // (E +> M) = (E -> M) /\ (E _|_ M), checked on all lassos up to length 3
  // over a two-variable universe where E watches x and M watches y.
  VarTable vars2;
  VarId xv = vars2.declare("x", range_domain(0, 1));
  VarId yv = vars2.declare("y", range_domain(0, 1));
  CanonicalSpec e2;
  e2.name = "Ex";
  e2.init = ex::eq(ex::var(xv), ex::integer(0));
  e2.next = ex::bottom();
  e2.sub = {xv};
  CanonicalSpec m2;
  m2.name = "My";
  m2.init = ex::eq(ex::var(yv), ex::integer(0));
  m2.next = ex::bottom();
  m2.sub = {yv};

  Formula lhs = tf::while_plus(e2, m2);
  Formula rhs = tf::land(tf::arrow_while(e2, m2), tf::orthogonal(e2, m2));
  Oracle oracle(vars2);
  std::size_t checked = 0;
  for (std::size_t len = 1; len <= 3; ++len) {
    for_each_lasso(vars2, len, [&](const LassoBehavior& b) {
      ++checked;
      EXPECT_EQ(oracle.evaluate(lhs, b), oracle.evaluate(rhs, b))
          << b.to_string(vars2);
      return false;
    });
  }
  EXPECT_GT(checked, 100u);
}

TEST_F(WhilePlusOracleTest, PlusOperator) {
  Oracle oracle(vars);
  // E_{+x}: either E holds, or once E fails x stops changing.
  Formula plus = tf::plus(e, {x});
  EXPECT_TRUE(oracle.evaluate(plus, lasso({0}, 0)));       // E holds
  EXPECT_TRUE(oracle.evaluate(plus, lasso({0, 1}, 1)));    // fails, then x frozen
  EXPECT_TRUE(oracle.evaluate(plus, lasso({1}, 0)));       // n = 0 freeze
  EXPECT_FALSE(oracle.evaluate(plus, lasso({0, 1, 0}, 1)));  // keeps changing
  EXPECT_FALSE(oracle.evaluate(plus, lasso({1, 0}, 1)));     // changes after failing
}

TEST(BoundedValidity, FindsViolationsAndConfirmsValidities) {
  VarTable vars;
  VarId x = vars.declare("x", range_domain(0, 1));
  // |= [](x = 0) \/ <>(x = 1) is valid (it is a tautology over this domain).
  Formula valid = tf::lor(tf::always(tf::pred(ex::eq(ex::var(x), ex::integer(0)))),
                          tf::eventually(tf::pred(ex::eq(ex::var(x), ex::integer(1)))));
  BoundedValidity r1 = check_validity_bounded(vars, valid, 3);
  EXPECT_TRUE(r1.valid);
  EXPECT_GT(r1.behaviors_checked, 0u);
  // |= <>(x = 1) is not valid.
  Formula invalid = tf::eventually(tf::pred(ex::eq(ex::var(x), ex::integer(1))));
  BoundedValidity r2 = check_validity_bounded(vars, invalid, 3);
  EXPECT_FALSE(r2.valid);
  ASSERT_TRUE(r2.violation.has_value());
  Oracle oracle(vars);
  EXPECT_FALSE(oracle.evaluate(invalid, *r2.violation));
}

TEST(RandomLassos, GeneratorProducesValidLassos) {
  VarTable vars;
  vars.declare("x", range_domain(0, 2));
  std::mt19937 rng(7);
  for (int i = 0; i < 20; ++i) {
    LassoBehavior b = random_lasso(vars, 5, rng);
    EXPECT_EQ(b.length(), 5u);
    EXPECT_LT(b.loop_start(), 5u);
  }
}

}  // namespace
}  // namespace opentla
