// The noninterleaving representation (the abstract's remark: "We could
// prove this had we used a noninterleaving representation of the queue"):
// with components whose actions leave their inputs free and include joint
// steps, the composition formula (3) holds WITHOUT the Disjoint side
// condition G.

#include <gtest/gtest.h>

#include "opentla/ag/composition_theorem.hpp"
#include "opentla/check/invariant.hpp"
#include "opentla/compose/compose.hpp"
#include "opentla/queue/double_queue.hpp"

namespace opentla {
namespace {

class NonInterleavingTest : public ::testing::Test {
 protected:
  NonInterleavingTest() : sys(make_double_queue_ni(/*capacity=*/1, /*num_values=*/2)) {}

  CompositionOptions options() {
    CompositionOptions opts;
    opts.goal_witness = {{"q", sys.qbar}};
    return opts;
  }

  DoubleQueueSystem sys;
};

TEST_F(NonInterleavingTest, JointStepsExistInTheCompleteSystem) {
  // The complete NI queue admits a step advancing both handshakes at once.
  QueueSpecs ni = build_queue_specs_ni(sys.vars, sys.i, sys.o, sys.q, 1, "^x");
  const std::vector<VarId> unused = {sys.q1, sys.q2, sys.z.sig, sys.z.ack, sys.z.val};
  StateGraph g = build_composite_graph(
      sys.vars, {{ni.complete.unhidden(), true},
                 {make_pin(sys.vars, unused, "PinUnused"), false}},
      /*free_tuples=*/{}, /*pinned=*/unused);
  bool joint_step = false;
  for (StateId u = 0; u < g.num_states() && !joint_step; ++u) {
    for (StateId v : g.successors(u)) {
      const State& s = g.state(u);
      const State& t = g.state(v);
      if (changes_tuple({sys.i.ack}, s, t) &&
          changes_tuple({sys.o.sig, sys.o.val}, s, t)) {
        joint_step = true;
        break;
      }
    }
  }
  EXPECT_TRUE(joint_step);
}

TEST_F(NonInterleavingTest, FormulaThreeHoldsWithoutG) {
  // (QE1 +> QM1) /\ (QE2 +> QM2) => (QEdbl +> QMdbl) — no G conjunct.
  std::vector<AGSpec> components = {{sys.qe1, sys.qm1}, {sys.qe2, sys.qm2}};
  ProofReport report = verify_composition(sys.vars, components, sys.goal(), options());
  EXPECT_TRUE(report.all_discharged()) << report.to_string();
}

TEST_F(NonInterleavingTest, InterleavingVersionStillFailsWithoutG) {
  // Control: the interleaving representation over the same parameters
  // remains invalid without G (the same checker run on near-identical
  // input distinguishes the two representations).
  DoubleQueueSystem il = make_double_queue(1, 2);
  CompositionOptions opts;
  opts.goal_witness = {{"q", il.qbar}};
  std::vector<AGSpec> components = {{il.qe1, il.qm1}, {il.qe2, il.qm2}};
  ProofReport report = verify_composition(il.vars, components, il.goal(), opts);
  EXPECT_FALSE(report.all_discharged());
}

TEST_F(NonInterleavingTest, OrthogonalityHoldsForNoninterleavingWithoutG) {
  // The deeper reason formula (3) composes noninterleaved: the NI
  // assumption and guarantee are orthogonal even WITHOUT the Disjoint
  // conjunct — each spec tolerates the other's simultaneous moves (joint
  // steps are its own actions), so no single step falsifies both. The
  // Proposition 3/4 route therefore discharges H2a here too, with its
  // semantic step 2.1 succeeding where the interleaving representation's
  // fails (test Prop3Route.OrthogonalityFailsWithoutG).
  Prop3Route route;
  route.env_outputs = {sys.i.sig, sys.i.val, sys.o.ack};
  route.guarantee_outputs = {sys.i.ack, sys.o.sig, sys.o.val};
  std::vector<AGSpec> components = {{sys.qe1, sys.qm1}, {sys.qe2, sys.qm2}};
  std::vector<Obligation> obs =
      discharge_h2a_via_prop3(sys.vars, components, sys.goal(), route, options());
  for (const Obligation& ob : obs) {
    EXPECT_TRUE(ob.discharged) << ob.id << ": " << ob.detail;
  }
  EXPECT_EQ(obs.back().id, "H2a(via Prop3)");
}

TEST_F(NonInterleavingTest, NiCompositionAlsoHoldsWithG) {
  // Adding G back restricts behaviors, so the theorem instance still goes
  // through (G is merely unnecessary, not harmful).
  ProofReport report =
      verify_composition(sys.vars, sys.components(), sys.goal(), options());
  EXPECT_TRUE(report.all_discharged()) << report.to_string();
}

TEST_F(NonInterleavingTest, JointBufferUpdatePreservesTheBound) {
  // |qbar| <= 2N+1 under the NI composite as well.
  std::vector<CompositePart> parts = {
      {sys.dbl.env, true},
      {sys.qm1.unhidden(), true},
      {sys.qm2.unhidden(), true},
      {make_pin(sys.vars, {sys.q}, "PinQ"), false}};
  StateGraph low =
      build_composite_graph(sys.vars, parts, /*free_tuples=*/{}, /*pinned=*/{sys.q});
  InvariantResult r = check_invariant(
      low, ex::le(ex::len(sys.qbar), ex::integer(2 * sys.capacity + 1)));
  EXPECT_TRUE(r.holds) << format_trace(sys.vars, r.counterexample);
}

}  // namespace
}  // namespace opentla
