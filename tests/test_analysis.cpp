// Unit tests for expression analysis: free variables, flattening, action
// decomposition, DNF expansion, structural equality (opentla/expr/analysis).

#include <gtest/gtest.h>

#include "opentla/expr/analysis.hpp"
#include "opentla/expr/expr.hpp"

namespace opentla {
namespace {

class AnalysisTest : public ::testing::Test {
 protected:
  AnalysisTest() {
    x = vars.declare("x", range_domain(0, 3));
    y = vars.declare("y", range_domain(0, 3));
  }
  VarTable vars;
  VarId x = 0, y = 0;
};

TEST_F(AnalysisTest, FreeVarsSplitsPrimed) {
  Expr e = ex::eq(ex::primed_var(x), ex::add(ex::var(y), ex::integer(1)));
  FreeVars fv = free_vars(e);
  EXPECT_EQ(fv.primed, (std::set<VarId>{x}));
  EXPECT_EQ(fv.unprimed, (std::set<VarId>{y}));
  EXPECT_FALSE(is_state_function(e));
  EXPECT_TRUE(is_state_function(ex::var(y)));
}

TEST_F(AnalysisTest, EnabledHidesPrimedVars) {
  Expr e = ex::enabled(ex::eq(ex::primed_var(x), ex::var(y)));
  FreeVars fv = free_vars(e);
  EXPECT_TRUE(fv.primed.empty());
  EXPECT_EQ(fv.unprimed, (std::set<VarId>{y}));
  EXPECT_TRUE(is_state_function(e));
}

TEST_F(AnalysisTest, FlattenDropsUnits) {
  Expr e = ex::land(ex::land(ex::var(x), ex::top()), ex::var(y));
  EXPECT_EQ(flatten_and(e).size(), 2u);
  Expr o = ex::lor(ex::bottom(), ex::lor(ex::var(x), ex::var(y)));
  EXPECT_EQ(flatten_or(o).size(), 2u);
}

TEST_F(AnalysisTest, DecomposeGuardAssignResidual) {
  // x < 3 /\ x' = x + 1 /\ y' # y
  Expr act = ex::land({ex::lt(ex::var(x), ex::integer(3)),
                       ex::eq(ex::primed_var(x), ex::add(ex::var(x), ex::integer(1))),
                       ex::neq(ex::primed_var(y), ex::var(y))});
  std::vector<ActionDisjunct> ds = decompose_action(act);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].guards.size(), 1u);
  ASSERT_EQ(ds[0].assignments.size(), 1u);
  EXPECT_EQ(ds[0].assignments[0].first, x);
  EXPECT_EQ(ds[0].residual.size(), 1u);
  EXPECT_EQ(ds[0].unassigned_primed, (std::vector<VarId>{y}));
}

TEST_F(AnalysisTest, DecomposeHandlesSymmetricEquality) {
  // 0 = x' is an assignment too.
  Expr act = ex::eq(ex::integer(0), ex::primed_var(x));
  std::vector<ActionDisjunct> ds = decompose_action(act);
  ASSERT_EQ(ds.size(), 1u);
  ASSERT_EQ(ds[0].assignments.size(), 1u);
  EXPECT_EQ(ds[0].assignments[0].first, x);
}

TEST_F(AnalysisTest, DecomposeTupleAssignment) {
  // <<x', y'>> = <<y, x>> splits into two assignments.
  Expr act = ex::eq(ex::primed_var_tuple({x, y}), ex::make_tuple({ex::var(y), ex::var(x)}));
  std::vector<ActionDisjunct> ds = decompose_action(act);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].assignments.size(), 2u);
  EXPECT_TRUE(ds[0].residual.empty());
}

TEST_F(AnalysisTest, DoubleAssignmentBecomesResidual) {
  // x' = 0 /\ x' = y: the second constraint must be checked, not dropped.
  Expr act = ex::land(ex::eq(ex::primed_var(x), ex::integer(0)),
                      ex::eq(ex::primed_var(x), ex::var(y)));
  std::vector<ActionDisjunct> ds = decompose_action(act);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].assignments.size(), 1u);
  EXPECT_EQ(ds[0].residual.size(), 1u);
}

TEST_F(AnalysisTest, DisjunctsDecomposeIndependently) {
  Expr a = ex::eq(ex::primed_var(x), ex::integer(0));
  Expr b = ex::eq(ex::primed_var(y), ex::integer(1));
  std::vector<ActionDisjunct> ds = decompose_action(ex::lor(a, b));
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds[0].assignments[0].first, x);
  EXPECT_EQ(ds[1].assignments[0].first, y);
}

TEST_F(AnalysisTest, ToDnfDistributes) {
  // (A \/ B) /\ (C \/ D) -> 4 disjuncts.
  Expr a = ex::eq(ex::var(x), ex::integer(0));
  Expr b = ex::eq(ex::var(x), ex::integer(1));
  Expr c = ex::eq(ex::var(y), ex::integer(0));
  Expr d = ex::eq(ex::var(y), ex::integer(1));
  Expr dnf = to_dnf(ex::land(ex::lor(a, b), ex::lor(c, d)));
  EXPECT_EQ(flatten_or(dnf).size(), 4u);
}

TEST_F(AnalysisTest, ToDnfLimitsExpansion) {
  std::vector<Expr> big;
  for (int i = 0; i < 6; ++i) {
    big.push_back(ex::lor(ex::eq(ex::var(x), ex::integer(0)),
                          ex::eq(ex::var(x), ex::integer(1))));
  }
  EXPECT_THROW(to_dnf(ex::land(std::move(big)), 8), std::runtime_error);
}

TEST_F(AnalysisTest, StructuralEquality) {
  Expr a = ex::land(ex::eq(ex::var(x), ex::integer(0)), ex::unchanged({y}));
  Expr b = ex::land(ex::eq(ex::var(x), ex::integer(0)), ex::unchanged({y}));
  Expr c = ex::land(ex::eq(ex::var(x), ex::integer(1)), ex::unchanged({y}));
  EXPECT_TRUE(structurally_equal(a, b));
  EXPECT_FALSE(structurally_equal(a, c));
  EXPECT_TRUE(structurally_equal(ex::local("v"), ex::local("v")));
  EXPECT_FALSE(structurally_equal(ex::local("v"), ex::local("w")));
  EXPECT_FALSE(structurally_equal(ex::var(x), ex::primed_var(x)));
}

}  // namespace
}  // namespace opentla
