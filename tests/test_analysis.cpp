// Unit tests for expression analysis: free variables, flattening, action
// decomposition, DNF expansion, structural equality (opentla/expr/analysis).

#include <gtest/gtest.h>

#include "opentla/expr/analysis.hpp"
#include "opentla/expr/expr.hpp"

namespace opentla {
namespace {

class AnalysisTest : public ::testing::Test {
 protected:
  AnalysisTest() {
    x = vars.declare("x", range_domain(0, 3));
    y = vars.declare("y", range_domain(0, 3));
  }
  VarTable vars;
  VarId x = 0, y = 0;
};

TEST_F(AnalysisTest, FreeVarsSplitsPrimed) {
  Expr e = ex::eq(ex::primed_var(x), ex::add(ex::var(y), ex::integer(1)));
  FreeVars fv = free_vars(e);
  EXPECT_EQ(fv.primed, (std::set<VarId>{x}));
  EXPECT_EQ(fv.unprimed, (std::set<VarId>{y}));
  EXPECT_FALSE(is_state_function(e));
  EXPECT_TRUE(is_state_function(ex::var(y)));
}

TEST_F(AnalysisTest, EnabledHidesPrimedVars) {
  Expr e = ex::enabled(ex::eq(ex::primed_var(x), ex::var(y)));
  FreeVars fv = free_vars(e);
  EXPECT_TRUE(fv.primed.empty());
  EXPECT_EQ(fv.unprimed, (std::set<VarId>{y}));
  EXPECT_TRUE(is_state_function(e));
}

TEST_F(AnalysisTest, FlattenDropsUnits) {
  Expr e = ex::land(ex::land(ex::var(x), ex::top()), ex::var(y));
  EXPECT_EQ(flatten_and(e).size(), 2u);
  Expr o = ex::lor(ex::bottom(), ex::lor(ex::var(x), ex::var(y)));
  EXPECT_EQ(flatten_or(o).size(), 2u);
}

TEST_F(AnalysisTest, DecomposeGuardAssignResidual) {
  // x < 3 /\ x' = x + 1 /\ y' # y
  Expr act = ex::land({ex::lt(ex::var(x), ex::integer(3)),
                       ex::eq(ex::primed_var(x), ex::add(ex::var(x), ex::integer(1))),
                       ex::neq(ex::primed_var(y), ex::var(y))});
  std::vector<ActionDisjunct> ds = decompose_action(act);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].guards.size(), 1u);
  ASSERT_EQ(ds[0].assignments.size(), 1u);
  EXPECT_EQ(ds[0].assignments[0].first, x);
  EXPECT_EQ(ds[0].residual.size(), 1u);
  EXPECT_EQ(ds[0].unassigned_primed, (std::vector<VarId>{y}));
}

TEST_F(AnalysisTest, DecomposeHandlesSymmetricEquality) {
  // 0 = x' is an assignment too.
  Expr act = ex::eq(ex::integer(0), ex::primed_var(x));
  std::vector<ActionDisjunct> ds = decompose_action(act);
  ASSERT_EQ(ds.size(), 1u);
  ASSERT_EQ(ds[0].assignments.size(), 1u);
  EXPECT_EQ(ds[0].assignments[0].first, x);
}

TEST_F(AnalysisTest, DecomposeTupleAssignment) {
  // <<x', y'>> = <<y, x>> splits into two assignments.
  Expr act = ex::eq(ex::primed_var_tuple({x, y}), ex::make_tuple({ex::var(y), ex::var(x)}));
  std::vector<ActionDisjunct> ds = decompose_action(act);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].assignments.size(), 2u);
  EXPECT_TRUE(ds[0].residual.empty());
}

TEST_F(AnalysisTest, DoubleAssignmentBecomesResidual) {
  // x' = 0 /\ x' = y: the second constraint must be checked, not dropped.
  Expr act = ex::land(ex::eq(ex::primed_var(x), ex::integer(0)),
                      ex::eq(ex::primed_var(x), ex::var(y)));
  std::vector<ActionDisjunct> ds = decompose_action(act);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].assignments.size(), 1u);
  EXPECT_EQ(ds[0].residual.size(), 1u);
}

TEST_F(AnalysisTest, DisjunctsDecomposeIndependently) {
  Expr a = ex::eq(ex::primed_var(x), ex::integer(0));
  Expr b = ex::eq(ex::primed_var(y), ex::integer(1));
  std::vector<ActionDisjunct> ds = decompose_action(ex::lor(a, b));
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds[0].assignments[0].first, x);
  EXPECT_EQ(ds[1].assignments[0].first, y);
}

TEST_F(AnalysisTest, ToDnfDistributes) {
  // (A \/ B) /\ (C \/ D) -> 4 disjuncts.
  Expr a = ex::eq(ex::var(x), ex::integer(0));
  Expr b = ex::eq(ex::var(x), ex::integer(1));
  Expr c = ex::eq(ex::var(y), ex::integer(0));
  Expr d = ex::eq(ex::var(y), ex::integer(1));
  Expr dnf = to_dnf(ex::land(ex::lor(a, b), ex::lor(c, d)));
  EXPECT_EQ(flatten_or(dnf).size(), 4u);
}

TEST_F(AnalysisTest, ToDnfLimitsExpansion) {
  std::vector<Expr> big;
  for (int i = 0; i < 6; ++i) {
    big.push_back(ex::lor(ex::eq(ex::var(x), ex::integer(0)),
                          ex::eq(ex::var(x), ex::integer(1))));
  }
  EXPECT_THROW(to_dnf(ex::land(std::move(big)), 8), std::runtime_error);
}

TEST_F(AnalysisTest, FreeVarsThroughNestedEnabled) {
  // ENABLED(x' = y /\ ENABLED(y' = x)): all primes are quantified away at
  // every nesting level; only the unprimed reads leak out.
  Expr inner = ex::enabled(ex::eq(ex::primed_var(y), ex::var(x)));
  Expr e = ex::enabled(ex::land(ex::eq(ex::primed_var(x), ex::var(y)), inner));
  FreeVars fv = free_vars(e);
  EXPECT_TRUE(fv.primed.empty());
  EXPECT_EQ(fv.unprimed, (std::set<VarId>{x, y}));
  EXPECT_TRUE(is_state_function(e));

  // A prime outside the ENABLED still counts.
  Expr mixed = ex::land(e, ex::eq(ex::primed_var(x), ex::integer(0)));
  EXPECT_EQ(free_vars(mixed).primed, (std::set<VarId>{x}));
}

TEST_F(AnalysisTest, ToDnfAtTheLimitStillSucceeds) {
  // 2^2 = 4 disjuncts with max_disjuncts = 4: exactly at the limit, no
  // throw; at 3 the same formula must throw.
  Expr pair = ex::lor(ex::eq(ex::var(x), ex::integer(0)),
                      ex::eq(ex::var(x), ex::integer(1)));
  Expr e = ex::land(pair, pair);
  EXPECT_EQ(flatten_or(to_dnf(e, 4)).size(), 4u);
  EXPECT_THROW(to_dnf(e, 3), std::runtime_error);
}

TEST_F(AnalysisTest, TupleAssignmentArityMismatchStaysResidual) {
  // <<x', y'>> = <<0>>: arities differ, so the equality cannot be split
  // into assignments and must be kept as a residual constraint.
  Expr act = ex::eq(ex::primed_var_tuple({x, y}), ex::make_tuple({ex::integer(0)}));
  std::vector<ActionDisjunct> ds = decompose_action(act);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_TRUE(ds[0].assignments.empty());
  ASSERT_EQ(ds[0].residual.size(), 1u);
  EXPECT_EQ(ds[0].unassigned_primed, (std::vector<VarId>{x, y}));
}

TEST_F(AnalysisTest, TupleAssignmentWithPrimedRhsStaysResidual) {
  // <<x', y'>> = <<y', x>>: the rhs is not a state function, so this is a
  // constraint to check, not an executable assignment.
  Expr act = ex::eq(ex::primed_var_tuple({x, y}),
                    ex::make_tuple({ex::primed_var(y), ex::var(x)}));
  std::vector<ActionDisjunct> ds = decompose_action(act);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_TRUE(ds[0].assignments.empty());
  EXPECT_EQ(ds[0].residual.size(), 1u);
}

TEST_F(AnalysisTest, MixedTupleLhsIsNotAnAssignment)  {
  // <<x', y>> = <<0, 1>>: one lhs element is unprimed, so the tuple is not
  // an assignment shape.
  Expr act = ex::eq(ex::make_tuple({ex::primed_var(x), ex::var(y)}),
                    ex::make_tuple({ex::integer(0), ex::integer(1)}));
  std::vector<ActionDisjunct> ds = decompose_action(act);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_TRUE(ds[0].assignments.empty());
  EXPECT_EQ(ds[0].residual.size(), 1u);
}

TEST_F(AnalysisTest, TupleAssignmentSwappedOrientation) {
  // <<y, x>> = <<x', y'>> orients to the primed side and splits.
  Expr act = ex::eq(ex::make_tuple({ex::var(y), ex::var(x)}),
                    ex::primed_var_tuple({x, y}));
  std::vector<ActionDisjunct> ds = decompose_action(act);
  ASSERT_EQ(ds.size(), 1u);
  ASSERT_EQ(ds[0].assignments.size(), 2u);
  EXPECT_EQ(ds[0].assignments[0].first, x);
  EXPECT_EQ(ds[0].assignments[1].first, y);
  EXPECT_TRUE(ds[0].residual.empty());
}

TEST_F(AnalysisTest, FoldConstantEvaluatesClosedExpressions) {
  // (1 + 2) * 3 = 9, comparisons, and sequence operators.
  Expr nine = ex::mul(ex::add(ex::integer(1), ex::integer(2)), ex::integer(3));
  ASSERT_TRUE(fold_constant(nine).has_value());
  EXPECT_EQ(fold_constant(nine)->as_int(), 9);
  EXPECT_EQ(fold_constant(ex::lt(ex::integer(2), ex::integer(1)))->as_bool(), false);
  Expr seq = ex::make_tuple({ex::integer(4), ex::integer(5)});
  EXPECT_EQ(fold_constant(ex::len(seq))->as_int(), 2);
  EXPECT_EQ(fold_constant(ex::head(seq))->as_int(), 4);
  EXPECT_EQ(fold_constant(ex::index(seq, ex::integer(2)))->as_int(), 5);
}

TEST_F(AnalysisTest, FoldConstantShortCircuits) {
  // FALSE /\ x' = 0 folds to FALSE even though one conjunct is open.
  Expr open = ex::eq(ex::primed_var(x), ex::integer(0));
  EXPECT_EQ(fold_constant(ex::land(ex::bottom(), open))->as_bool(), false);
  EXPECT_EQ(fold_constant(ex::lor(ex::top(), open))->as_bool(), true);
  // An open expression with no determining constant does not fold.
  EXPECT_FALSE(fold_constant(ex::land(ex::top(), open)).has_value());
  EXPECT_FALSE(fold_constant(ex::var(x)).has_value());
  EXPECT_FALSE(fold_constant(ex::enabled(open)).has_value());
}

TEST_F(AnalysisTest, FoldConstantRefusesOverflowAndBadMod) {
  // Arithmetic that would overflow (or a nonpositive divisor) never folds:
  // evaluation reports these as errors, and folding them to a wrapped value
  // would silently change program behavior.
  const Expr max = ex::integer(INT64_MAX);
  const Expr min = ex::integer(INT64_MIN);
  EXPECT_FALSE(fold_constant(ex::add(max, ex::integer(1))).has_value());
  EXPECT_FALSE(fold_constant(ex::sub(min, ex::integer(1))).has_value());
  EXPECT_FALSE(fold_constant(ex::mul(max, ex::integer(2))).has_value());
  EXPECT_FALSE(fold_constant(ex::neg(min)).has_value());
  EXPECT_FALSE(fold_constant(ex::mod(ex::integer(1), ex::integer(0))).has_value());
  EXPECT_FALSE(fold_constant(ex::mod(ex::integer(1), ex::integer(-2))).has_value());
  // Floored modulo folds like it evaluates: -3 % 2 = 1.
  EXPECT_EQ(fold_constant(ex::mod(ex::integer(-3), ex::integer(2)))->as_int(), 1);
}

TEST_F(AnalysisTest, ResidualNeedsAnnotatesUnassignedPrimedVars) {
  // x' = x + 1 /\ y' # y /\ y' # x': residual conjuncts annotated with the
  // unassigned primed variables they mention (x' is assigned, so only y').
  Expr act = ex::land({ex::eq(ex::primed_var(x), ex::add(ex::var(x), ex::integer(1))),
                       ex::neq(ex::primed_var(y), ex::var(y)),
                       ex::neq(ex::primed_var(y), ex::primed_var(x))});
  std::vector<ActionDisjunct> ds = decompose_action(act);
  ASSERT_EQ(ds.size(), 1u);
  ASSERT_EQ(ds[0].residual.size(), 2u);
  ASSERT_EQ(ds[0].residual_needs.size(), 2u);
  EXPECT_EQ(ds[0].residual_needs[0], (std::vector<VarId>{y}));
  EXPECT_EQ(ds[0].residual_needs[1], (std::vector<VarId>{y}));
}

TEST_F(AnalysisTest, ScheduleResidualOrdersCheapConjunctsFirst) {
  VarId z = vars.declare("z", range_domain(0, 1));
  // Conjunct 0 needs {y, z}; conjunct 1 needs {x}; conjunct 2 needs {}.
  const std::vector<std::vector<VarId>> needs = {{y, z}, {x}, {}};
  ResidualSchedule sched = schedule_residual(needs, {x, y, z});
  // Conjunct 2 is decidable with nothing bound; conjunct 1 after one
  // variable (x); conjunct 0 after binding y and z.
  EXPECT_EQ(sched.order, (std::vector<VarId>{x, y, z}));
  ASSERT_EQ(sched.at_depth.size(), 4u);
  EXPECT_EQ(sched.at_depth[0], (std::vector<std::size_t>{2}));
  EXPECT_EQ(sched.at_depth[1], (std::vector<std::size_t>{1}));
  EXPECT_TRUE(sched.at_depth[2].empty());
  EXPECT_EQ(sched.at_depth[3], (std::vector<std::size_t>{0}));
}

TEST_F(AnalysisTest, ScheduleResidualPutsFrameVariablesLast) {
  VarId z = vars.declare("z", range_domain(0, 1));
  // Only conjunct 0 constrains anything ({y}); x and z are pure frame
  // enumeration and must come after y so they only run under accepted
  // bindings.
  ResidualSchedule sched = schedule_residual({{y}}, {x, y, z});
  ASSERT_EQ(sched.order.size(), 3u);
  EXPECT_EQ(sched.order[0], y);
  EXPECT_EQ(sched.at_depth[1], (std::vector<std::size_t>{0}));
  // Frame variables keep the caller's relative order.
  EXPECT_EQ(sched.order[1], x);
  EXPECT_EQ(sched.order[2], z);
}

TEST_F(AnalysisTest, ScheduleResidualTreatsExternalVarsAsBound) {
  // A conjunct needing a variable outside `enumerate` (bound by the caller)
  // is scheduled at the depth where its in-set variables complete.
  ResidualSchedule sched = schedule_residual({{x, y}}, {y});
  EXPECT_EQ(sched.order, (std::vector<VarId>{y}));
  EXPECT_TRUE(sched.at_depth[0].empty());
  EXPECT_EQ(sched.at_depth[1], (std::vector<std::size_t>{0}));

  // With no needed variable in the set at all, the check runs at depth 0.
  ResidualSchedule none = schedule_residual({{x}}, {});
  EXPECT_TRUE(none.order.empty());
  ASSERT_EQ(none.at_depth.size(), 1u);
  EXPECT_EQ(none.at_depth[0], (std::vector<std::size_t>{0}));
}

TEST_F(AnalysisTest, ResidualPrimedCoversAssignedVarsInResidual) {
  // x' = x + 1 /\ y' # x': x' is assigned AND occurs in the residual, so
  // residual_primed = {x, y} while unassigned_primed = {y}. Footprint
  // analysis unions residual_primed with the assignments, so nothing is
  // lost either way.
  Expr act = ex::land({ex::eq(ex::primed_var(x), ex::add(ex::var(x), ex::integer(1))),
                       ex::neq(ex::primed_var(y), ex::primed_var(x))});
  std::vector<ActionDisjunct> ds = decompose_action(act);
  ASSERT_EQ(ds.size(), 1u);
  EXPECT_EQ(ds[0].residual_primed, (std::vector<VarId>{x, y}));
  EXPECT_EQ(ds[0].unassigned_primed, (std::vector<VarId>{y}));
  // A disjunct with no residual has no residual primed variables.
  std::vector<ActionDisjunct> plain =
      decompose_action(ex::eq(ex::primed_var(x), ex::integer(0)));
  ASSERT_EQ(plain.size(), 1u);
  EXPECT_TRUE(plain[0].residual_primed.empty());
}

TEST_F(AnalysisTest, ScheduleResidualEmptyResidualKeepsEnumerateOrder) {
  // No residual conjuncts at all: pure frame enumeration in the caller's
  // order, with nothing to check at any depth.
  ResidualSchedule sched = schedule_residual({}, {y, x});
  EXPECT_EQ(sched.order, (std::vector<VarId>{y, x}));
  ASSERT_EQ(sched.at_depth.size(), 3u);
  for (const std::vector<std::size_t>& checks : sched.at_depth) {
    EXPECT_TRUE(checks.empty());
  }
}

TEST_F(AnalysisTest, ScheduleResidualSameVariableTieBreaksByIndex) {
  // Two conjuncts need the same variable; the greedy scheduler must place
  // both at the depth where it binds, in conjunct-index order, before
  // moving on to the other variable.
  const std::vector<std::vector<VarId>> needs = {{y}, {y}, {x}};
  ResidualSchedule sched = schedule_residual(needs, {x, y});
  EXPECT_EQ(sched.order, (std::vector<VarId>{y, x}));
  ASSERT_EQ(sched.at_depth.size(), 3u);
  EXPECT_TRUE(sched.at_depth[0].empty());
  EXPECT_EQ(sched.at_depth[1], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(sched.at_depth[2], (std::vector<std::size_t>{2}));
}

TEST_F(AnalysisTest, ScheduleResidualZeroVariableConjunctRunsAtDepthZero) {
  // A residual conjunct over no primed variables (e.g. a pure guard that
  // survived into the residual) is decided before any enumeration.
  ResidualSchedule sched = schedule_residual({{}}, {x, y});
  EXPECT_EQ(sched.order, (std::vector<VarId>{x, y}));
  ASSERT_EQ(sched.at_depth.size(), 3u);
  EXPECT_EQ(sched.at_depth[0], (std::vector<std::size_t>{0}));
  EXPECT_TRUE(sched.at_depth[1].empty());
  EXPECT_TRUE(sched.at_depth[2].empty());
}

TEST_F(AnalysisTest, ScheduleResidualIsDeterministic) {
  VarId z = vars.declare("z", range_domain(0, 1));
  const std::vector<std::vector<VarId>> needs = {{y, z}, {x}, {}, {y}};
  ResidualSchedule a = schedule_residual(needs, {x, y, z});
  ResidualSchedule b = schedule_residual(needs, {x, y, z});
  EXPECT_EQ(a.order, b.order);
  EXPECT_EQ(a.at_depth, b.at_depth);
}

TEST_F(AnalysisTest, StructuralEquality) {
  Expr a = ex::land(ex::eq(ex::var(x), ex::integer(0)), ex::unchanged({y}));
  Expr b = ex::land(ex::eq(ex::var(x), ex::integer(0)), ex::unchanged({y}));
  Expr c = ex::land(ex::eq(ex::var(x), ex::integer(1)), ex::unchanged({y}));
  EXPECT_TRUE(structurally_equal(a, b));
  EXPECT_FALSE(structurally_equal(a, c));
  EXPECT_TRUE(structurally_equal(ex::local("v"), ex::local("v")));
  EXPECT_FALSE(structurally_equal(ex::local("v"), ex::local("w")));
  EXPECT_FALSE(structurally_equal(ex::var(x), ex::primed_var(x)));
}

}  // namespace
}  // namespace opentla
