// Compiled with OPENTLA_OBS_ENABLED=0 (see tests/CMakeLists.txt): checks
// that the instrumentation macros vanish entirely in an obs-off build —
// they expand to ((void)0), so even with the runtime flag forced on, code
// compiled this way records nothing.

#include <gtest/gtest.h>

#include "opentla/obs/memory.hpp"
#include "opentla/obs/obs.hpp"

namespace opentla {
namespace {

namespace obs = ::opentla::obs;

static_assert(!obs::compile_time_enabled(),
              "this TU must be compiled with OPENTLA_OBS_ENABLED=0");

TEST(ObsDisabled, MacrosAreNoOpsEvenWhenRuntimeEnabled) {
  obs::reset();
  obs::set_enabled(true);
  OPENTLA_OBS_COUNT(StatesGenerated);
  OPENTLA_OBS_COUNT_N(ConfigsExpanded, 1000);
  OPENTLA_OBS_GAUGE_MAX(PeakGraphStates, 1000);
  // The parallel-engine instruments vanish like every other site.
  OPENTLA_OBS_COUNT(ParStatesExpanded);
  OPENTLA_OBS_COUNT(ParSteals);
  OPENTLA_OBS_COUNT_N(ParShardContention, 7);
  OPENTLA_OBS_GAUGE_MAX(PeakParWorkers, 8);
  // The obs v2 instrument families vanish too.
  OPENTLA_OBS_LEVEL_SET(FrontierSize, 9);
  OPENTLA_OBS_COUNT_LABELED(ActionFired, obs::kLabelOverflow, 5);
  OPENTLA_OBS_HIST(SuccessorFanout, 16);
  OPENTLA_OBS_PHASE("stripped_phase");
  { OPENTLA_OBS_SPAN("stripped"); }
  // The obs v4 memory-accounting macros vanish too.
  OPENTLA_OBS_MEM_ALLOC(obs::MemDomain::StateStore, 4096);
  OPENTLA_OBS_MEM_FREE(obs::MemDomain::StateStore, 4096);
  {
    obs::MemTally tally(obs::MemDomain::Frontier);
    OPENTLA_OBS_MEM_TALLY_ADD(tally, 512);
  }
  obs::set_enabled(false);

  const obs::Snapshot snap = obs::snapshot();
  for (std::size_t i = 0; i < obs::kNumCounters; ++i) {
    EXPECT_EQ(snap.counters[i], 0u) << obs::name(static_cast<obs::Counter>(i));
  }
  for (std::size_t i = 0; i < obs::kNumGauges; ++i) {
    EXPECT_EQ(snap.gauges[i], 0u);
  }
  for (std::size_t i = 0; i < obs::kNumLevels; ++i) {
    EXPECT_EQ(snap.levels[i], 0u);
  }
  for (std::size_t f = 0; f < obs::kNumLabeledCounters; ++f) {
    for (std::uint64_t v : snap.labeled[f]) EXPECT_EQ(v, 0u);
  }
  for (std::size_t h = 0; h < obs::kNumHistograms; ++h) {
    EXPECT_EQ(snap.hists[h].count, 0u);
  }
  for (std::size_t d = 0; d < obs::kNumMemDomains; ++d) {
    EXPECT_EQ(snap.mem[d].peak_bytes, 0u);
    EXPECT_EQ(snap.mem[d].allocs, 0u);
  }
  EXPECT_EQ(snap.mem_tracked_peak_bytes, 0u);
  EXPECT_TRUE(snap.phases.empty());
  EXPECT_TRUE(snap.spans.empty());
  obs::reset();
}

TEST(ObsDisabled, MacroArgumentsAreNotEvaluated) {
  // The side effects below must be compiled out with the macros.
  int evaluations = 0;
  auto bump = [&evaluations]() {
    ++evaluations;
    return 1;
  };
  obs::set_enabled(true);
  OPENTLA_OBS_COUNT_N(SccPasses, bump());
  OPENTLA_OBS_GAUGE_MAX(PeakProductNodes, bump());
  OPENTLA_OBS_LEVEL_SET(FrontierSize, bump());
  OPENTLA_OBS_COUNT_LABELED(ActionFired, obs::kLabelOverflow, bump());
  OPENTLA_OBS_HIST(SuccessorFanout, bump());
  OPENTLA_OBS_PHASE((bump(), "unused"));
  OPENTLA_OBS_MEM_ALLOC(obs::MemDomain::Other, bump());
  OPENTLA_OBS_MEM_FREE(obs::MemDomain::Other, bump());
  obs::MemTally tally(obs::MemDomain::Other);
  OPENTLA_OBS_MEM_TALLY_ADD(tally, bump());
  obs::set_enabled(false);
  (void)bump;  // otherwise unreferenced once the macros vanish
  EXPECT_EQ(evaluations, 0);
}

}  // namespace
}  // namespace opentla
