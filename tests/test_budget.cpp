// Run budgets, graceful stop, and the obs v3 surfaces built on them: the
// RunBudget latch (first breach wins, signals included), the unified
// max_states semantics (serial and parallel stop at the same state count
// with StopReason::kStateBudget), deadline/RSS breaches producing partial
// graphs instead of throws, the flight-recorder ring (wraparound, torn-slot
// safety, JSONL dump), the embedded metrics server (/metrics and /progress
// over real sockets), and the run ledger's crash-safe JSONL append.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "opentla/check/invariant.hpp"
#include "opentla/graph/state_graph.hpp"
#include "opentla/graph/successor.hpp"
#include "opentla/obs/flight_recorder.hpp"
#include "opentla/obs/metrics_server.hpp"
#include "opentla/obs/obs.hpp"
#include "opentla/obs/progress.hpp"
#include "opentla/queue/channel.hpp"
#include "opentla/run/budget.hpp"
#include "opentla/run/ledger.hpp"

namespace opentla {
namespace {

// --- The RunBudget latch. ---

TEST(RunBudget, UnlimitedBudgetNeverStops) {
  run::RunBudget b;
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(b.should_stop());
  EXPECT_FALSE(b.stopped());
  EXPECT_EQ(b.reason(), run::StopReason::kCompleted);
}

TEST(RunBudget, FirstReasonWins) {
  run::RunBudget b;
  b.request_stop(run::StopReason::kDeadline);
  b.request_stop(run::StopReason::kMemory);
  b.request_stop(run::StopReason::kStateBudget);
  EXPECT_TRUE(b.stopped());
  EXPECT_EQ(b.reason(), run::StopReason::kDeadline);
}

TEST(RunBudget, RequestStopWithCompletedIsANoOp) {
  run::RunBudget b;
  b.request_stop(run::StopReason::kCompleted);
  EXPECT_FALSE(b.stopped());
}

TEST(RunBudget, DeadlineLatches) {
  run::BudgetLimits limits;
  limits.deadline_ms = 1;
  run::RunBudget b(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(b.should_stop());
  EXPECT_TRUE(b.stopped());
  EXPECT_EQ(b.reason(), run::StopReason::kDeadline);
}

TEST(RunBudget, RssCeilingLatches) {
  run::BudgetLimits limits;
  limits.max_rss_bytes = 1;  // any live process exceeds one byte
  run::RunBudget b(limits);
  // The RSS poll runs every kRssPollStride ticks starting at tick 0.
  EXPECT_TRUE(b.should_stop());
  EXPECT_EQ(b.reason(), run::StopReason::kMemory);
}

TEST(RunBudget, WatchedSignalRequestsGracefulStop) {
  run::BudgetLimits limits;
  limits.watch_signals = true;
  {
    run::RunBudget b(limits);
    EXPECT_FALSE(b.should_stop());
    ASSERT_EQ(std::raise(SIGTERM), 0);  // caught by the budget's handler
    EXPECT_TRUE(run::signal_stop_requested());
    EXPECT_TRUE(b.should_stop());
    EXPECT_EQ(b.reason(), run::StopReason::kInterrupted);
  }
  // The destructor restored the previous disposition; a second watching
  // budget resets the pending flag.
  run::RunBudget b2(limits);
  EXPECT_FALSE(run::signal_stop_requested());
  EXPECT_FALSE(b2.should_stop());
}

// --- Graceful stop in the explorers. ---

struct ChannelSpace {
  VarTable vars;
  Channel ch;
  ActionSuccessors any;
  State init;

  explicit ChannelSpace(int num_values)
      : ch(declare_channel(vars, "c", range_domain(0, num_values - 1))),
        any(vars, ex::lor(send_any_action(ch), ack_action(ch))),
        init(ActionSuccessors::states_satisfying(vars, channel_init(ch), {ch.val})[0]) {}

  StateGraph::SuccessorFn succ() const {
    return [this](const State& s, const std::function<void(const State&)>& emit) {
      any.for_each_successor(s, emit);
    };
  }
};

TEST(BudgetExplore, StateBudgetStopsSerialAndParallelAtTheSameCount) {
  ChannelSpace space(64);  // 129 reachable states
  for (unsigned threads : {1u, 2u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ExploreOptions opts;
    opts.threads = threads;
    opts.max_states = 25;
    StateGraph g(space.vars, {space.init}, space.succ(), opts);
    EXPECT_EQ(g.num_states(), 25u);
    EXPECT_EQ(g.stop_reason(), run::StopReason::kStateBudget);
  }
}

TEST(BudgetExplore, GenerousStateBudgetDoesNotTrigger) {
  ChannelSpace space(8);
  ExploreOptions opts;
  opts.max_states = 1000;
  StateGraph g(space.vars, {space.init}, space.succ(), opts);
  EXPECT_EQ(g.stop_reason(), run::StopReason::kCompleted);
  EXPECT_GT(g.num_states(), 2u);
}

TEST(BudgetExplore, DeadlineYieldsPartialGraphSerialAndParallel) {
  ChannelSpace space(64);
  for (unsigned threads : {1u, 2u, 4u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    run::BudgetLimits limits;
    limits.deadline_ms = 1;
    run::RunBudget budget(limits);
    ExploreOptions opts;
    opts.threads = threads;
    opts.budget = &budget;
    // A successor function slow enough that the 1ms deadline fires
    // mid-exploration on any machine.
    auto slow = [&space](const State& s, const std::function<void(const State&)>& emit) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      space.any.for_each_successor(s, emit);
    };
    StateGraph g(space.vars, {space.init}, slow, opts);
    EXPECT_EQ(g.stop_reason(), run::StopReason::kDeadline);
    EXPECT_TRUE(budget.stopped());
    EXPECT_LT(g.num_states(), 129u);  // a strict prefix of the space
  }
}

TEST(BudgetExplore, AlreadyBreachedRssStopsImmediately) {
  ChannelSpace space(16);
  run::BudgetLimits limits;
  limits.max_rss_bytes = 1;
  run::RunBudget budget(limits);
  ExploreOptions opts;
  opts.budget = &budget;
  StateGraph g(space.vars, {space.init}, space.succ(), opts);
  EXPECT_EQ(g.stop_reason(), run::StopReason::kMemory);
}

TEST(BudgetExplore, InvariantResultCarriesStopReason) {
  ChannelSpace space(64);
  ExploreOptions opts;
  opts.max_states = 10;
  StateGraph g(space.vars, {space.init}, space.succ(), opts);
  InvariantResult r = check_invariant(g, ex::boolean(true));
  EXPECT_TRUE(r.holds);
  EXPECT_EQ(r.stop_reason, run::StopReason::kStateBudget);
  EXPECT_EQ(r.states_checked, 10u);
}

// --- The flight recorder. ---

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(FlightRecorder, RingWrapsAndDumpKeepsNewest) {
  const std::string path = ::testing::TempDir() + "flight_wrap.jsonl";
  obs::flight_recorder_enable(8, path);
  for (int i = 0; i < 100; ++i) {
    obs::flight_recorder_record(obs::FlightKind::kNote, "note", (std::uint64_t)i);
  }
  EXPECT_EQ(obs::flight_recorder_recorded(), 100u);
  const std::size_t written = obs::flight_recorder_dump("test");
  obs::flight_recorder_disable();
  EXPECT_LE(written, 8u);
  EXPECT_GT(written, 0u);
  std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), written + 1);  // events + the trailing dump line
  // Oldest-first, newest retained: the last event line is sequence 99.
  EXPECT_NE(lines[written - 1].find("\"v0\":99"), std::string::npos) << lines[written - 1];
  EXPECT_NE(lines.back().find("\"type\":\"dump\""), std::string::npos);
  EXPECT_NE(lines.back().find("\"reason\":\"test\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorder, LabelsAreSanitizedForJson) {
  const std::string path = ::testing::TempDir() + "flight_sanitize.jsonl";
  obs::flight_recorder_enable(8, path);
  obs::flight_recorder_record(obs::FlightKind::kNote, "he said \"hi\"\\\n");
  obs::flight_recorder_dump("test");
  obs::flight_recorder_disable();
  std::vector<std::string> lines = read_lines(path);
  ASSERT_GE(lines.size(), 1u);
  // Quote, backslash and newline were replaced at record time.
  EXPECT_NE(lines[0].find("he said _hi__"), std::string::npos) << lines[0];
  std::remove(path.c_str());
}

TEST(FlightRecorder, DisabledRecorderIsANoOp) {
  obs::flight_recorder_disable();
  EXPECT_FALSE(obs::flight_recorder_enabled());
  obs::flight_recorder_record(obs::FlightKind::kNote, "ignored");
  EXPECT_EQ(obs::flight_recorder_dump("test"), 0u);
}

TEST(FlightRecorder, BudgetBreachRecordsAnEvent) {
  const std::string path = ::testing::TempDir() + "flight_budget.jsonl";
  obs::flight_recorder_enable(16, path);
  run::RunBudget b;
  b.request_stop(run::StopReason::kDeadline);
  obs::flight_recorder_dump("test");
  obs::flight_recorder_disable();
  std::vector<std::string> lines = read_lines(path);
  bool saw_budget = false;
  for (const std::string& l : lines) {
    if (l.find("\"type\":\"budget\"") != std::string::npos &&
        l.find("\"label\":\"deadline\"") != std::string::npos) {
      saw_budget = true;
    }
  }
  EXPECT_TRUE(saw_budget);
  std::remove(path.c_str());
}

// --- The metrics server, over real sockets. ---

std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return {};
  }
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)!::write(fd, req.data(), req.size());
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof buf)) > 0) resp.append(buf, (std::size_t)n);
  ::close(fd);
  return resp;
}

TEST(MetricsServer, ServesOpenMetricsAndProgress) {
  obs::MetricsServer server(0);  // ephemeral port
  ASSERT_TRUE(server.ok());
  ASSERT_GT(server.port(), 0);

  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200"), std::string::npos);
  EXPECT_NE(metrics.find("application/openmetrics-text"), std::string::npos);
  EXPECT_NE(metrics.find("# EOF"), std::string::npos);

  // Before any sample: a valid JSON body flagged have_sample=false.
  const std::string before = http_get(server.port(), "/progress");
  EXPECT_NE(before.find("\"have_sample\": false"), std::string::npos);

  obs::ProgressSample s;
  s.seq = 7;
  s.states = 1234;
  s.frontier = 56;
  s.rss_bytes = 1 << 20;
  server.set_progress(s);
  const std::string after = http_get(server.port(), "/progress");
  EXPECT_NE(after.find("\"have_sample\": true"), std::string::npos);
  EXPECT_NE(after.find("\"states\": 1234"), std::string::npos);
  EXPECT_NE(after.find("\"peak_rss_bytes\""), std::string::npos);

  const std::string missing = http_get(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);
  server.stop();
}

TEST(MetricsServer, StopIsIdempotent) {
  obs::MetricsServer server(0);
  ASSERT_TRUE(server.ok());
  server.stop();
  server.stop();
}

// --- The run ledger. ---

TEST(RunLedger, AppendsParseableLinesAndChainsHashes) {
  const std::string path = ::testing::TempDir() + "ledger_test.jsonl";
  std::remove(path.c_str());

  const std::uint64_t h1 = run::fnv1a64("abc", 3);
  const std::uint64_t h2 = run::fnv1a64("abc", 3);
  EXPECT_EQ(h1, h2);
  EXPECT_NE(run::fnv1a64("abd", 3), h1);
  // Chaining folds files: hash("ab" then "c") == hash("abc").
  EXPECT_EQ(run::fnv1a64("c", 1, run::fnv1a64("ab", 2)), h1);

  run::RunRecord rec;
  rec.command = "check";
  rec.spec_hash = "00ff00ff00ff00ff";
  rec.options = "check spec.tla --invariant \"x < 2\"";
  rec.stop_reason = "deadline";
  rec.exit_code = 3;
  rec.states = 42;
  rec.budget_stops = 1;
  rec.elapsed_us = 1234;
  rec.peak_rss_bytes = 1 << 20;
  ASSERT_TRUE(run::append_run_ledger(path, rec));
  ASSERT_TRUE(run::append_run_ledger(path, rec));

  std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& l : lines) {
    EXPECT_NE(l.find("\"schema\": \"opentla-run-ledger-v2\""), std::string::npos) << l;
    EXPECT_NE(l.find("\"stop_reason\": \"deadline\""), std::string::npos) << l;
    EXPECT_NE(l.find("\"exit_code\": 3"), std::string::npos) << l;
    // The embedded quotes in options were escaped.
    EXPECT_NE(l.find("\\\"x < 2\\\""), std::string::npos) << l;
  }
  std::remove(path.c_str());
}

TEST(RunLedger, UnwritablePathReturnsFalse) {
  run::RunRecord rec;
  EXPECT_FALSE(run::append_run_ledger("/nonexistent_dir_zzz/ledger.jsonl", rec));
}

}  // namespace
}  // namespace opentla
