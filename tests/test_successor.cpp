// Unit tests for TLC-style successor generation (opentla/graph/successor).

#include <gtest/gtest.h>

#include <algorithm>

#include "opentla/expr/eval.hpp"
#include "opentla/graph/successor.hpp"

namespace opentla {
namespace {

class SuccessorTest : public ::testing::Test {
 protected:
  SuccessorTest() {
    x = vars.declare("x", range_domain(0, 3));
    y = vars.declare("y", range_domain(0, 2));
  }
  State st(std::int64_t xv, std::int64_t yv) {
    return State({Value::integer(xv), Value::integer(yv)});
  }
  VarTable vars;
  VarId x = 0, y = 0;
};

TEST_F(SuccessorTest, AssignmentsAreDeterministic) {
  // x' = x + 1 /\ y' = y: exactly one successor (until the domain edge).
  ActionSuccessors gen(vars, ex::land(ex::eq(ex::primed_var(x), ex::add(ex::var(x), ex::integer(1))),
                                      ex::unchanged({y})));
  std::vector<State> succ = gen.successors(st(1, 2));
  ASSERT_EQ(succ.size(), 1u);
  EXPECT_EQ(succ[0], st(2, 2));
  // At the top of the domain the assignment leaves the space: no successor.
  EXPECT_TRUE(gen.successors(st(3, 0)).empty());
  EXPECT_FALSE(gen.enabled(st(3, 0)));
  EXPECT_TRUE(gen.enabled(st(0, 0)));
}

TEST_F(SuccessorTest, GuardsPruneDisjuncts) {
  Expr up = ex::land(ex::lt(ex::var(x), ex::integer(3)),
                     ex::eq(ex::primed_var(x), ex::add(ex::var(x), ex::integer(1))),
                     ex::unchanged({y}));
  Expr reset = ex::land(ex::eq(ex::var(x), ex::integer(3)),
                        ex::eq(ex::primed_var(x), ex::integer(0)), ex::unchanged({y}));
  ActionSuccessors gen(vars, ex::lor(up, reset));
  EXPECT_EQ(gen.successors(st(1, 0)), (std::vector<State>{st(2, 0)}));
  EXPECT_EQ(gen.successors(st(3, 0)), (std::vector<State>{st(0, 0)}));
}

TEST_F(SuccessorTest, UnconstrainedPrimedVariableRangesOverDomain) {
  // TLA actions have no frame: x' = 0 leaves y' free.
  ActionSuccessors gen(vars, ex::eq(ex::primed_var(x), ex::integer(0)));
  std::vector<State> succ = gen.successors(st(2, 1));
  EXPECT_EQ(succ.size(), 3u);  // y' in {0, 1, 2}
  for (const State& t : succ) EXPECT_EQ(t[x].as_int(), 0);
}

TEST_F(SuccessorTest, PinnedVariablesKeepTheirValue) {
  ActionSuccessors gen(vars, ex::eq(ex::primed_var(x), ex::integer(0)), {y});
  std::vector<State> succ = gen.successors(st(2, 1));
  ASSERT_EQ(succ.size(), 1u);
  EXPECT_EQ(succ[0], st(0, 1));
}

TEST_F(SuccessorTest, PinnedVariableInResidualIsStillEnumerated) {
  // y' # y constrains a pinned variable: pinning must not lose successors.
  ActionSuccessors gen(vars, ex::land(ex::eq(ex::primed_var(x), ex::var(x)),
                                      ex::neq(ex::primed_var(y), ex::var(y))),
                       {y});
  EXPECT_EQ(gen.successors(st(0, 0)).size(), 2u);
}

TEST_F(SuccessorTest, ResidualConstraintsFilter) {
  // x' # x /\ x' # 3 /\ y' = y
  ActionSuccessors gen(vars, ex::land(ex::neq(ex::primed_var(x), ex::var(x)),
                                      ex::neq(ex::primed_var(x), ex::integer(3)),
                                      ex::unchanged({y})));
  std::vector<State> succ = gen.successors(st(0, 0));
  EXPECT_EQ(succ.size(), 2u);  // x' in {1, 2}
}

TEST_F(SuccessorTest, DuplicateSuccessorsAcrossDisjunctsAreMerged) {
  Expr a = ex::land(ex::eq(ex::primed_var(x), ex::integer(1)), ex::unchanged({y}));
  ActionSuccessors gen(vars, ex::lor(a, a));
  EXPECT_EQ(gen.successors(st(0, 0)).size(), 1u);
}

TEST_F(SuccessorTest, MatchesBruteForceEnumeration) {
  // Cross-check the generator against direct evaluation over all pairs.
  Expr act = ex::lor(ex::land(ex::lt(ex::var(x), ex::var(y)),
                              ex::eq(ex::primed_var(x), ex::var(y)),
                              ex::neq(ex::primed_var(y), ex::var(y))),
                     ex::land(ex::eq(ex::primed_var(y), ex::integer(0)),
                              ex::ge(ex::var(x), ex::var(y)),
                              ex::eq(ex::primed_var(x), ex::var(x))));
  ActionSuccessors gen(vars, act);
  StateSpace space(vars);
  space.for_each_state([&](const State& s) {
    std::vector<State> expected;
    space.for_each_state([&](const State& t) {
      if (eval_action(act, vars, s, t)) expected.push_back(t);
    });
    std::vector<State> got = gen.successors(s);
    auto key = [&](const State& st_) { return st_.to_string(vars); };
    std::sort(expected.begin(), expected.end(),
              [&](const State& a, const State& b) { return key(a) < key(b); });
    std::sort(got.begin(), got.end(),
              [&](const State& a, const State& b) { return key(a) < key(b); });
    EXPECT_EQ(got, expected) << "at state " << s.to_string(vars);
  });
}

TEST_F(SuccessorTest, GuardsEnabledIsWeakerThanEnabled) {
  // x < 3 guards a disjunct whose residual (y' < y - 5) can never hold:
  // guards_enabled sees the precondition, enabled() sees the dead residual.
  Expr act = ex::land(ex::lt(ex::var(x), ex::integer(3)),
                      ex::eq(ex::primed_var(x), ex::var(x)),
                      ex::lt(ex::primed_var(y), ex::sub(ex::var(y), ex::integer(5))));
  ActionSuccessors gen(vars, act);
  EXPECT_TRUE(gen.guards_enabled(st(0, 0)));
  EXPECT_FALSE(gen.enabled(st(0, 0)));
  EXPECT_FALSE(gen.guards_enabled(st(3, 0)));
  EXPECT_FALSE(gen.enabled(st(3, 0)));
}

TEST_F(SuccessorTest, NaiveAndPrunedEnumerationsAgreeIncludingOrder) {
  // Enumerate-and-test (test hook) vs the pruned search: identical
  // successor sequences — pruning may only skip, never reorder.
  Expr act = ex::lor(ex::land(ex::neq(ex::primed_var(x), ex::var(x)),
                              ex::neq(ex::primed_var(y), ex::var(y)),
                              ex::lt(ex::primed_var(x), ex::integer(3))),
                     ex::eq(ex::primed_var(y), ex::integer(0)));
  ActionSuccessors gen(vars, act);
  StateSpace space(vars);
  space.for_each_state([&](const State& s) {
    ActionSuccessors::set_naive_enumeration_for_test(true);
    std::vector<State> naive = gen.successors(s);
    const bool naive_enabled = gen.enabled(s);
    ActionSuccessors::set_naive_enumeration_for_test(false);
    std::vector<State> pruned = gen.successors(s);
    EXPECT_EQ(pruned, naive) << "at state " << s.to_string(vars);
    EXPECT_EQ(gen.enabled(s), naive_enabled);
  });
}

TEST_F(SuccessorTest, EarlyExitStopsEnumeration) {
  // fn returning true must stop the generator mid-enumeration: asking for
  // the first successor of an action with many must invoke fn exactly once.
  ActionSuccessors gen(vars, ex::eq(ex::primed_var(x), ex::integer(0)));
  int seen = 0;
  // for_each_successor has a void callback; enabled() exercises the
  // bool-returning early exit underneath.
  EXPECT_TRUE(gen.enabled(st(0, 0)));
  gen.for_each_successor(st(0, 0), [&](const State&) { ++seen; });
  EXPECT_EQ(seen, 3);  // y' in {0, 1, 2}: the void path still sees all
}

TEST_F(SuccessorTest, StatesSatisfyingEnumeratesPredicate) {
  std::vector<State> states = ActionSuccessors::states_satisfying(
      vars, ex::land(ex::eq(ex::var(x), ex::integer(0)), ex::lt(ex::var(y), ex::integer(2))));
  EXPECT_EQ(states.size(), 2u);
  std::vector<State> pinned = ActionSuccessors::states_satisfying(
      vars, ex::eq(ex::var(x), ex::integer(0)), {y});
  EXPECT_EQ(pinned.size(), 1u);
}

}  // namespace
}  // namespace opentla
