// Unit tests for variables, states, interning and state-space enumeration
// (opentla/state).

#include <gtest/gtest.h>

#include <set>

#include "opentla/state/state.hpp"
#include "opentla/state/state_space.hpp"
#include "opentla/state/var_table.hpp"

namespace opentla {
namespace {

TEST(VarTable, DeclareAndLookup) {
  VarTable vars;
  VarId x = vars.declare("x", range_domain(0, 3));
  VarId y = vars.declare("y", bool_domain());
  EXPECT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars.name(x), "x");
  EXPECT_EQ(vars.domain(y).size(), 2u);
  EXPECT_EQ(vars.find("x"), std::optional<VarId>(x));
  EXPECT_EQ(vars.find("z"), std::nullopt);
  EXPECT_EQ(vars.require("y"), y);
  EXPECT_THROW(vars.require("z"), std::runtime_error);
}

TEST(VarTable, RejectsDuplicatesAndEmptyDomains) {
  VarTable vars;
  vars.declare("x", range_domain(0, 1));
  EXPECT_THROW(vars.declare("x", range_domain(0, 1)), std::runtime_error);
  EXPECT_THROW(vars.declare("y", Domain(std::vector<Value>{})), std::runtime_error);
}

TEST(State, EqualityAndHash) {
  State a({Value::integer(1), Value::boolean(true)});
  State b({Value::integer(1), Value::boolean(true)});
  State c({Value::integer(2), Value::boolean(true)});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_FALSE(a == c);
}

TEST(State, Printing) {
  VarTable vars;
  vars.declare("x", range_domain(0, 3));
  vars.declare("q", seq_domain(range_domain(0, 1), 2));
  State s({Value::integer(2), Value::tuple({Value::integer(1)})});
  EXPECT_EQ(s.to_string(vars), "x = 2, q = <<1>>");
}

TEST(StateStore, InterningIsStable) {
  StateStore store;
  State a({Value::integer(1)});
  State b({Value::integer(2)});
  StateId ia = store.intern(a);
  StateId ib = store.intern(b);
  EXPECT_NE(ia, ib);
  EXPECT_EQ(store.intern(a), ia);
  EXPECT_EQ(store.get(ia), a);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.find(b), ib);
  EXPECT_EQ(store.find(State({Value::integer(9)})), StateStore::kNone);
}

TEST(StateSpace, TotalStates) {
  VarTable vars;
  vars.declare("x", range_domain(0, 3));
  vars.declare("y", bool_domain());
  StateSpace space(vars);
  EXPECT_EQ(space.total_states(), 8u);
}

TEST(StateSpace, EnumeratesFullSpaceWithoutDuplicates) {
  VarTable vars;
  vars.declare("x", range_domain(0, 2));
  vars.declare("y", bool_domain());
  StateSpace space(vars);
  std::set<std::string> seen;
  space.for_each_state([&](const State& s) { seen.insert(s.to_string(vars)); });
  EXPECT_EQ(seen.size(), 6u);
}

TEST(StateSpace, CompletionKeepsPinnedVariables) {
  VarTable vars;
  VarId x = vars.declare("x", range_domain(0, 2));
  VarId y = vars.declare("y", range_domain(0, 4));
  StateSpace space(vars);
  State base({Value::integer(1), Value::integer(4)});
  std::vector<std::int64_t> xs;
  space.for_each_completion(base, {x}, [&](const State& s) {
    xs.push_back(s[x].as_int());
    EXPECT_EQ(s[y].as_int(), 4);  // y is untouched
    return false;
  });
  EXPECT_EQ(xs, (std::vector<std::int64_t>{0, 1, 2}));
}

TEST(StateSpace, EmptyCompletionVisitsBaseOnce) {
  VarTable vars;
  vars.declare("x", range_domain(0, 2));
  StateSpace space(vars);
  int count = 0;
  space.for_each_completion(space.first_state(), {}, [&](const State&) {
    ++count;
    return false;
  });
  EXPECT_EQ(count, 1);
}

TEST(StateSpace, CompletionStopsWhenCallbackReturnsTrue) {
  VarTable vars;
  VarId x = vars.declare("x", range_domain(0, 9));
  StateSpace space(vars);
  int count = 0;
  const bool stopped =
      space.for_each_completion(space.first_state(), {x}, [&](const State&) {
        ++count;
        return count == 3;  // stop after the third completion
      });
  EXPECT_TRUE(stopped);
  EXPECT_EQ(count, 3);  // the odometer must not keep spinning after the stop
  count = 0;
  const bool exhausted =
      space.for_each_completion(space.first_state(), {x}, [&](const State&) {
        ++count;
        return false;
      });
  EXPECT_FALSE(exhausted);
  EXPECT_EQ(count, 10);
}

TEST(StateSpace, PrunedCompletionCutsSubtreesAndPreservesOdometerOrder) {
  VarTable vars;
  VarId x = vars.declare("x", range_domain(0, 2));
  VarId y = vars.declare("y", range_domain(0, 2));
  StateSpace space(vars);

  // Schedule: assign x at depth 0, y at depth 1; check 0 (x != 1) becomes
  // decidable once x is bound, check 1 (y != 0) once y is bound.
  ResidualSchedule sched;
  sched.order = {x, y};
  sched.at_depth = {{}, {0}, {1}};

  std::vector<std::pair<std::int64_t, std::int64_t>> leaves;
  int x_checks = 0;
  const bool stopped = space.for_each_completion_pruned(
      space.first_state(), sched,
      [&](std::size_t i, const State& s) {
        if (i == 0) {
          ++x_checks;
          return s[x].as_int() != 1;
        }
        return s[y].as_int() != 0;
      },
      [&](const State& s) {
        leaves.emplace_back(s[x].as_int(), s[y].as_int());
        return false;
      });
  EXPECT_FALSE(stopped);
  // x = 1 is cut before y is ever enumerated, so the x-check runs three
  // times (once per x value) and the x = 1 subtree contributes no leaves.
  EXPECT_EQ(x_checks, 3);
  const std::vector<std::pair<std::int64_t, std::int64_t>> want = {
      {0, 1}, {0, 2}, {2, 1}, {2, 2}};
  // Leaves appear in the flat odometer order over reversed(order) = {y, x}
  // (y fastest), restricted to the survivors — pruning never reorders.
  EXPECT_EQ(leaves, want);
}

TEST(StateSpace, PrunedCompletionDepthZeroCutAndEarlyStop) {
  VarTable vars;
  VarId x = vars.declare("x", range_domain(0, 4));
  StateSpace space(vars);
  ResidualSchedule sched;
  sched.order = {x};
  sched.at_depth = {{0}, {}};

  int calls = 0;
  // A failing depth-0 check prunes everything before any enumeration.
  EXPECT_FALSE(space.for_each_completion_pruned(
      space.first_state(), sched, [](std::size_t, const State&) { return false; },
      [&](const State&) {
        ++calls;
        return false;
      }));
  EXPECT_EQ(calls, 0);

  // The leaf callback can stop the search; the return value reports it.
  EXPECT_TRUE(space.for_each_completion_pruned(
      space.first_state(), sched, [](std::size_t, const State&) { return true; },
      [&](const State&) {
        ++calls;
        return calls == 2;
      }));
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace opentla
