// Integration tests for the alternating-bit protocol case study
// (opentla/abp): protocol invariants over lossy wires, refinement to the
// 2-place queue (safety + liveness), and the strong-vs-weak fairness
// boundary that loss creates.

#include <gtest/gtest.h>

#include "opentla/check/invariant.hpp"
#include "opentla/check/refinement.hpp"
#include "opentla/compose/compose.hpp"
#include "opentla/abp/abp.hpp"

namespace opentla {
namespace {

class AbpTest : public ::testing::Test {
 protected:
  AbpTest() : sys(make_abp_system(/*num_values=*/2)) {}

  StateGraph graph() {
    return build_composite_graph(
        sys.vars,
        {{sys.system, true}, {make_pin(sys.vars, {sys.q}, "PinQ"), false}},
        /*free_tuples=*/{}, /*pinned=*/{sys.q});
  }

  AbpSystem sys;
};

TEST_F(AbpTest, ReachableStateSpace) {
  StateGraph g = graph();
  EXPECT_GT(g.num_states(), 100u);
  EXPECT_LT(g.num_states(), 20000u);
}

TEST_F(AbpTest, TagDisciplineInvariant) {
  // The data wire only ever carries the sender's current tag, and the ack
  // wire only ever carries a tag the receiver has acknowledged: a message
  // in flight with tag s_bit carries Head(s_buf).
  StateGraph g = graph();
  Expr d_consistent = ex::implies(
      ex::land(ex::eq(ex::var(sys.d_full), ex::boolean(true)),
               ex::eq(ex::var(sys.d_bit), ex::var(sys.s_bit))),
      ex::land(ex::neq(ex::var(sys.s_buf), ex::constant(Value::empty_seq())),
               ex::eq(ex::var(sys.d_val), ex::head(ex::var(sys.s_buf)))));
  InvariantResult r = check_invariant(g, d_consistent);
  EXPECT_TRUE(r.holds) << format_trace(sys.vars, r.counterexample);
}

TEST_F(AbpTest, NoDuplicateDelivery) {
  // Once the receiver has flipped past the sender's tag (r_bit # s_bit),
  // the sender still holds the value but the receiver will treat any
  // retransmission as a duplicate: the witness counts it zero times, so
  // |qbar| <= 2 always.
  StateGraph g = graph();
  InvariantResult r = check_invariant(g, ex::le(ex::len(sys.qbar), ex::integer(2)));
  EXPECT_TRUE(r.holds) << format_trace(sys.vars, r.counterexample);
}

TEST_F(AbpTest, SenderReceiverAgreement) {
  // r_bit # s_bit means exactly: delivered but not yet acknowledged. In
  // that window the sender's buffer must still be full (it retransmits
  // until the ack arrives).
  StateGraph g = graph();
  Expr window = ex::implies(ex::neq(ex::var(sys.r_bit), ex::var(sys.s_bit)),
                            ex::neq(ex::var(sys.s_buf), ex::constant(Value::empty_seq())));
  InvariantResult r = check_invariant(g, window);
  EXPECT_TRUE(r.holds) << format_trace(sys.vars, r.counterexample);
}

TEST_F(AbpTest, RefinesTwoPlaceQueueSafety) {
  StateGraph g = graph();
  RefinementMapping mapping = mapping_by_name(sys.vars, sys.vars, {{"q", sys.qbar}});
  CanonicalSpec target = sys.queue.queue.safety_part();
  RefinementResult r = check_refinement(g, sys.system.fairness, target, mapping);
  EXPECT_TRUE(r.holds) << r.failed_part << "\n"
                       << format_trace(sys.vars, r.counterexample_prefix);
}

TEST_F(AbpTest, RefinesTwoPlaceQueueWithLiveness) {
  // The full claim: despite arbitrary (but not eternally victorious) loss,
  // the protocol implements the queue INCLUDING WF(QM) — the strong
  // fairness on reception is what carries the proof.
  StateGraph g = graph();
  RefinementMapping mapping = mapping_by_name(sys.vars, sys.vars, {{"q", sys.qbar}});
  RefinementResult r = check_refinement(g, sys.system.fairness, sys.queue.queue, mapping);
  EXPECT_TRUE(r.holds) << r.failed_part << "\n"
                       << format_trace(sys.vars, r.counterexample_prefix)
                       << format_trace(sys.vars, r.counterexample_cycle);
}

TEST_F(AbpTest, WeakFairnessIsNotEnoughUnderLoss) {
  // Downgrading SF(RRcvNew)/SF(SAckMatch) to WF admits the classic
  // counterexample: every transmission is lost, reception is disabled
  // infinitely often, so WF is vacuously satisfied while nothing is ever
  // delivered.
  StateGraph g = graph();
  RefinementMapping mapping = mapping_by_name(sys.vars, sys.vars, {{"q", sys.qbar}});
  CanonicalSpec weak = sys.system_with_weak_fairness_only();
  RefinementResult r = check_refinement(g, weak.fairness, sys.queue.queue, mapping);
  EXPECT_FALSE(r.holds);
  EXPECT_FALSE(r.counterexample_cycle.empty());
  // The violating cycle must involve loss: some state in it has a message
  // or ack in flight (otherwise nothing distinguishes it from a fair run).
  bool in_flight = false;
  for (const State& s : r.counterexample_cycle) {
    in_flight |= s[sys.d_full].as_bool() || s[sys.a_full].as_bool();
  }
  EXPECT_TRUE(in_flight);
}

TEST_F(AbpTest, LosslessRunDeliversInOrder) {
  // Drive one value through the protocol by hand: accept, send, receive,
  // deliver, ack — checking the interesting state after each step.
  StateGraph g = graph();
  // Find the shortest run that delivers a value to the client (out.sig
  // flips with out.val = in-flight value).
  std::vector<StateId> path = g.shortest_path_to([&](StateId s) {
    return g.state(s)[sys.out.sig].as_int() != g.state(s)[sys.out.ack].as_int();
  });
  ASSERT_FALSE(path.empty());
  // Put, SAccept, SSend, RRcvNew, RDeliver: five steps minimum.
  EXPECT_EQ(path.size(), 6u);
}

}  // namespace
}  // namespace opentla
