// Unit tests for prefix machines (subset construction over hidden
// variables), the freeze transform, and machine products
// (opentla/automata).

#include <gtest/gtest.h>

#include "opentla/automata/freeze.hpp"
#include "opentla/automata/prefix_machine.hpp"
#include "opentla/automata/product.hpp"

namespace opentla {
namespace {

// Universe: visible flag f in {0,1}, hidden counter h in {0,1,2}.
// Spec: f starts 0; h counts invisibly to 2, after which f may flip to 1.
class HiddenCounterTest : public ::testing::Test {
 protected:
  HiddenCounterTest() {
    f = vars.declare("f", range_domain(0, 1));
    h = vars.declare("h", range_domain(0, 2));

    spec.name = "HiddenCounter";
    spec.init = ex::land(ex::eq(ex::var(f), ex::integer(0)),
                         ex::eq(ex::var(h), ex::integer(0)));
    Expr tick = ex::land(ex::lt(ex::var(h), ex::integer(2)),
                         ex::eq(ex::primed_var(h), ex::add(ex::var(h), ex::integer(1))),
                         ex::unchanged({f}));
    Expr flip = ex::land(ex::eq(ex::var(h), ex::integer(2)),
                         ex::eq(ex::primed_var(f), ex::integer(1)), ex::unchanged({h}));
    spec.next = ex::lor(tick, flip);
    spec.sub = {f, h};
    spec.hidden = {h};
  }

  State st(std::int64_t fv, std::int64_t hv = 0) {
    return State({Value::integer(fv), Value::integer(hv)});
  }

  VarTable vars;
  VarId f = 0, h = 0;
  CanonicalSpec spec;
};

TEST_F(HiddenCounterTest, InitialConfigEnumeratesHiddenWitnesses) {
  PrefixMachine m(vars, spec);
  Value cfg = m.initial(st(0));
  EXPECT_TRUE(m.alive(cfg));
  EXPECT_EQ(cfg.length(), 1u);  // h = 0 is the only witness
  EXPECT_FALSE(m.alive(m.initial(st(1))));
}

TEST_F(HiddenCounterTest, HiddenStepsAccumulateDuringVisibleStutter) {
  PrefixMachine m(vars, spec);
  Value cfg = m.initial(st(0));
  // A visible stutter lets h either stay (stuttering) or tick.
  cfg = m.step(cfg, st(0), st(0));
  EXPECT_EQ(cfg.length(), 2u);  // h in {0, 1}
  cfg = m.step(cfg, st(0), st(0));
  EXPECT_EQ(cfg.length(), 3u);  // h in {0, 1, 2}
  EXPECT_GE(m.max_config_size(), 3u);
}

TEST_F(HiddenCounterTest, VisibleFlipRequiresEnoughHiddenProgress) {
  PrefixMachine m(vars, spec);
  Value cfg = m.initial(st(0));
  // Immediately flipping f is not yet explained by any hidden run.
  EXPECT_FALSE(m.alive(m.step(cfg, st(0), st(1))));
  // After two stutters, h = 2 is a witness and the flip is allowed.
  cfg = m.step(cfg, st(0), st(0));
  cfg = m.step(cfg, st(0), st(0));
  Value after = m.step(cfg, st(0), st(1));
  EXPECT_TRUE(m.alive(after));
  EXPECT_EQ(after.length(), 1u);  // only h = 2 explains the flip
}

TEST_F(HiddenCounterTest, DeadConfigStaysDead) {
  PrefixMachine m(vars, spec);
  Value dead = m.step(m.initial(st(0)), st(0), st(1));
  EXPECT_FALSE(m.alive(dead));
  EXPECT_FALSE(m.alive(m.step(dead, st(1), st(1))));
}

TEST_F(HiddenCounterTest, MachineWithoutHiddenVariables) {
  CanonicalSpec visible;
  visible.name = "FlagStaysZero";
  visible.init = ex::eq(ex::var(f), ex::integer(0));
  visible.next = ex::bottom();
  visible.sub = {f};
  PrefixMachine m(vars, visible);
  Value cfg = m.initial(st(0));
  EXPECT_TRUE(m.alive(cfg));
  cfg = m.step(cfg, st(0), st(0));
  EXPECT_TRUE(m.alive(cfg));
  // Any f change violates [][FALSE]_f.
  EXPECT_FALSE(m.alive(m.step(cfg, st(0), st(1))));
  // Irrelevant variables may change freely (h is not in the subscript).
  EXPECT_TRUE(m.alive(m.step(cfg, st(0, 0), st(0, 2))));
}

TEST_F(HiddenCounterTest, HiddenOutsideSubscriptRejected) {
  CanonicalSpec bad = spec;
  bad.sub = {f};
  EXPECT_THROW(PrefixMachine(vars, bad), std::runtime_error);
}

TEST_F(HiddenCounterTest, FreezeMachineSemantics) {
  // Freeze C(spec) on <<f>>: once the spec is violated, f must not change.
  auto inner = std::make_shared<PrefixMachine>(vars, spec);
  FreezeMachine fm(inner, {f});
  Value cfg = fm.initial(st(0));
  EXPECT_TRUE(fm.alive(cfg));
  // Kill the inner machine with an unexplained flip; the freeze branch
  // survives this step (the freeze happens "now", constraining later steps).
  cfg = fm.step(cfg, st(0), st(1));
  EXPECT_TRUE(fm.alive(cfg));
  // f is now frozen at 1: keeping it is fine...
  Value kept = fm.step(cfg, st(1), st(1));
  EXPECT_TRUE(fm.alive(kept));
  // ...but changing it kills the freeze branch too.
  Value changed = fm.step(cfg, st(1), st(0));
  EXPECT_FALSE(fm.alive(changed));
}

TEST_F(HiddenCounterTest, FreezeOnDeadInitialStateStillAlive) {
  // Even from a state violating Init, the n = 0 freeze (v constant from the
  // first state) applies.
  auto inner = std::make_shared<PrefixMachine>(vars, spec);
  FreezeMachine fm(inner, {f});
  Value cfg = fm.initial(st(1));
  EXPECT_TRUE(fm.alive(cfg));
  EXPECT_TRUE(fm.alive(fm.step(cfg, st(1), st(1))));
  EXPECT_FALSE(fm.alive(fm.step(cfg, st(1), st(0))));
}

TEST_F(HiddenCounterTest, ProductMachineConjunction) {
  CanonicalSpec visible;
  visible.name = "FlagStaysZero";
  visible.init = ex::eq(ex::var(f), ex::integer(0));
  visible.next = ex::bottom();
  visible.sub = {f};

  auto a = std::make_shared<PrefixMachine>(vars, spec);
  auto b = std::make_shared<PrefixMachine>(vars, visible);
  ProductMachine prod({a, b});
  Value cfg = prod.initial(st(0));
  EXPECT_TRUE(prod.alive(cfg));
  cfg = prod.step(cfg, st(0), st(0));
  cfg = prod.step(cfg, st(0), st(0));
  EXPECT_TRUE(prod.alive(cfg));
  // The flip satisfies `spec` (h = 2 witness) but violates FlagStaysZero,
  // so the product dies.
  EXPECT_FALSE(prod.alive(prod.step(cfg, st(0), st(1))));
  EXPECT_EQ(prod.num_factors(), 2u);
}

}  // namespace
}  // namespace opentla
