// Unit tests for the bytecode VM (opentla/vm): compiler goldens pinning
// the superinstruction lowerings, interpreter edge cases with exact error
// parity against the tree evaluator, compile determinism, and the
// CompiledExpr dispatch switch.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

#include "opentla/expr/eval.hpp"
#include "opentla/expr/expr.hpp"
#include "opentla/state/var_table.hpp"
#include "opentla/vm/compile.hpp"
#include "opentla/vm/interp.hpp"

namespace opentla {
namespace {

class VmTest : public ::testing::Test {
 protected:
  VmTest() {
    x = vars.declare("x", range_domain(0, 3));
    y = vars.declare("y", range_domain(0, 3));
    z = vars.declare("z", range_domain(0, 3));
  }

  State state(std::int64_t xv, std::int64_t yv, std::int64_t zv = 0) {
    return State({Value::integer(xv), Value::integer(yv), Value::integer(zv)});
  }

  /// Tree and VM results for `e` on the same triple; both evaluators must
  /// agree on the value or throw the byte-identical message.
  void expect_parity(const Expr& e, const State* cur, const State* nxt) {
    EvalContext tctx;
    tctx.vars = &vars;
    tctx.current = cur;
    tctx.next = nxt;
    vm::VmContext vctx;
    vctx.vars = &vars;
    vctx.current = cur;
    vctx.next = nxt;
    vm::Program p = vm::compile(e);
    Value tree_val;
    std::string tree_err;
    try {
      tree_val = eval(e, tctx);
    } catch (const std::runtime_error& ex) {
      tree_err = ex.what();
    }
    Value vm_val;
    std::string vm_err;
    try {
      vm_val = vm::run(p, vctx);
    } catch (const std::runtime_error& ex) {
      vm_err = ex.what();
    }
    EXPECT_EQ(tree_err, vm_err) << "expr: " << e.to_string(vars);
    if (tree_err.empty() && vm_err.empty()) {
      EXPECT_TRUE(tree_val == vm_val)
          << "expr: " << e.to_string(vars) << " tree=" << tree_val.to_string()
          << " vm=" << vm_val.to_string();
    }
  }

  VarTable vars;
  VarId x = 0, y = 0, z = 0;
};

// ---------------------------------------------------------------------------
// Compiler goldens: the superinstruction lowerings are part of the public
// contract (EXPERIMENTS.md VMEVAL reports instruction counts), so their
// disassembly is pinned byte-for-byte.

TEST_F(VmTest, GoldenUnchangedFusion) {
  // A run of v' = v conjuncts collapses into one Unchanged frame; the
  // always-boolean tail needs no TestBool.
  Expr e = ex::land(ex::gt(ex::var(x), ex::integer(0)), ex::unchanged({y, z}));
  EXPECT_EQ(vm::disassemble(vm::compile(e)),
            "program: 3 instrs, 1 regs, 0 locals\n"
            "0000 CmpVarConst  r0 <- v0 > 0\n"
            "0001 JumpIfFalse  if !r0 -> 0003\n"
            "0002 Unchanged    r0 <- UNCHANGED <<v1, v2>>\n");
}

TEST_F(VmTest, GoldenTupleCompare) {
  // <<x', y'>> = <<y, x>> evaluates all elements into consecutive
  // registers and compares pairwise without materializing either tuple.
  Expr e = ex::eq(ex::make_tuple({ex::primed_var(x), ex::primed_var(y)}),
                  ex::make_tuple({ex::var(y), ex::var(x)}));
  EXPECT_EQ(vm::disassemble(vm::compile(e)),
            "program: 5 instrs, 4 regs, 0 locals\n"
            "0000 LoadVar      r0 <- v0'\n"
            "0001 LoadVar      r1 <- v1'\n"
            "0002 LoadVar      r2 <- v1\n"
            "0003 LoadVar      r3 <- v0\n"
            "0004 TupleEq      r0 <- <<r0..r1>> = <<r2..r3>>\n");
}

TEST_F(VmTest, GoldenBoundedQuantifier) {
  // The body is a structured range after the head; the loop writes the
  // bound value into local slot l0 and reads the body result from r1.
  // `x = i` compares the variable in place (EqVarReg); the VarCheck keeps
  // the variable's state-lookup error ahead of the rhs, like the tree.
  Expr e = ex::exists_val("i", range_domain(0, 3),
                          ex::eq(ex::var(x), ex::local("i")));
  EXPECT_EQ(vm::disassemble(vm::compile(e)),
            "program: 4 instrs, 2 regs, 1 locals\n"
            "0000 Exists       r0 <- \\E l0 in d0: body r1 len 3\n"
            "0001 VarCheck     check v0\n"
            "0002 LoadLocal    r1 <- l0\n"
            "0003 EqVarReg     r1 <- v0 = r1\n");
}

TEST_F(VmTest, GoldenFusedCompares) {
  EXPECT_EQ(vm::disassemble(vm::compile(ex::lt(ex::primed_var(y), ex::var(x)))),
            "program: 1 instrs, 1 regs, 0 locals\n"
            "0000 CmpVarVar    r0 <- v1' < v0\n");
  EXPECT_EQ(vm::disassemble(vm::compile(ex::ge(ex::var(x), ex::integer(2)))),
            "program: 1 instrs, 1 regs, 0 locals\n"
            "0000 CmpVarConst  r0 <- v0 >= 2\n");
  // Constant on the left keeps its evaluation-order slot (kSwapped).
  EXPECT_EQ(vm::disassemble(vm::compile(ex::ge(ex::integer(2), ex::var(x)))),
            "program: 1 instrs, 1 regs, 0 locals\n"
            "0000 CmpVarConst  r0 <- 2 >= v0\n");
}

// ---------------------------------------------------------------------------
// Determinism: compiling the same expression twice yields byte-identical
// programs (instruction streams, pools, and disassembly).

TEST_F(VmTest, CompileIsDeterministic) {
  Expr e = ex::land(
      {ex::gt(ex::var(x), ex::integer(0)),
       ex::exists_val("i", range_domain(0, 3),
                      ex::eq(ex::primed_var(y),
                             ex::add(ex::local("i"), ex::var(x)))),
       ex::unchanged({z})});
  vm::Program a = vm::compile(e);
  vm::Program b = vm::compile(e);
  ASSERT_EQ(a.instrs.size(), b.instrs.size());
  for (std::size_t i = 0; i < a.instrs.size(); ++i) {
    EXPECT_TRUE(a.instrs[i] == b.instrs[i]) << "instr " << i;
  }
  EXPECT_EQ(a.consts.size(), b.consts.size());
  EXPECT_EQ(a.var_lists, b.var_lists);
  EXPECT_EQ(a.num_regs, b.num_regs);
  EXPECT_EQ(a.num_locals, b.num_locals);
  EXPECT_EQ(vm::disassemble(a), vm::disassemble(b));
}

// ---------------------------------------------------------------------------
// Interpreter edge cases.

TEST_F(VmTest, EmptyProgramReturnsDefault) {
  vm::Program p;  // no instructions: register 0 keeps its default
  vm::VmContext ctx;
  EXPECT_TRUE(vm::run(p, ctx) == Value::boolean(false));
}

TEST_F(VmTest, NullExpressionTrapsLazily) {
  // A null kid compiles (to a trap) and only throws when executed.
  vm::Program p = vm::compile(ex::lor(ex::boolean(true), Expr()));
  vm::VmContext ctx;
  EXPECT_TRUE(vm::run_bool(p, ctx));  // short-circuits before the trap
  vm::Program q = vm::compile(ex::lor(ex::boolean(false), Expr()));
  try {
    vm::run_bool(q, ctx);
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& ex) {
    EXPECT_STREQ(ex.what(), "eval: null expression");
  }
}

TEST_F(VmTest, DeepNestingHitsDepthCap) {
  // The compiler recurses once per expression level and caps the depth
  // at kMaxDepth (kept well under sanitizer stack budgets). A chain that
  // fits compiles and evaluates; one past the cap throws CompileLimit,
  // and CompiledExpr falls back to the tree with the same value.
  auto chain = [](std::size_t depth) {
    Expr e = ex::integer(1);
    for (std::size_t i = 0; i < depth; ++i) e = ex::add(ex::integer(0), e);
    return e;
  };
  const Expr fits = chain(vm::kMaxDepth - 8);
  vm::Program p = vm::compile(fits);
  vm::VmContext ctx;
  EXPECT_TRUE(vm::run(p, ctx) == Value::integer(1));

  const Expr too_deep = chain(vm::kMaxDepth + 8);
  EXPECT_THROW(vm::compile(too_deep), vm::CompileLimit);
  const vm::CompiledExpr deep_fallback(too_deep);
  EXPECT_FALSE(deep_fallback.compiled());
  EXPECT_TRUE(deep_fallback.eval(ctx) == Value::integer(1));
}

TEST_F(VmTest, WideTupleHitsRegisterCap) {
  // A tuple literal holds every element in a register at once, so a
  // wide-enough tuple exhausts the register file at depth 2 and falls
  // back to the tree.
  auto wide = [](std::size_t arity) {
    std::vector<Expr> kids;
    for (std::size_t i = 0; i < arity; ++i) {
      kids.push_back(ex::integer(static_cast<std::int64_t>(i)));
    }
    return ex::make_tuple(std::move(kids));
  };
  const Expr fits = wide(64);
  vm::VmContext ctx;
  vm::Program p = vm::compile(fits);
  EXPECT_TRUE(vm::run(p, ctx).as_tuple().size() == 64);

  const Expr too_wide = wide(vm::kMaxRegs + 8);
  EXPECT_THROW(vm::compile(too_wide), vm::CompileLimit);
  const vm::CompiledExpr wide_fallback(too_wide);
  EXPECT_FALSE(wide_fallback.compiled());
  EXPECT_TRUE(wide_fallback.eval(ctx).as_tuple().size() == vm::kMaxRegs + 8);
}

TEST_F(VmTest, CheckedArithmeticTraps) {
  const std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  const std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  const State s = state(1, 2);
  expect_parity(ex::add(ex::constant(Value::integer(kMax)), ex::integer(1)), &s,
                nullptr);
  expect_parity(ex::sub(ex::constant(Value::integer(kMin)), ex::integer(1)), &s,
                nullptr);
  expect_parity(ex::mul(ex::constant(Value::integer(kMax)), ex::integer(2)), &s,
                nullptr);
  expect_parity(ex::neg(ex::constant(Value::integer(kMin))), &s, nullptr);
  // TLC floored modulo: b <= 0 is a domain error, negative a is not.
  expect_parity(ex::mod(ex::var(x), ex::integer(0)), &s, nullptr);
  expect_parity(ex::mod(ex::integer(-3), ex::integer(2)), &s, nullptr);
  expect_parity(ex::mod(ex::neg(ex::integer(7)), ex::var(y)), &s, nullptr);
}

TEST_F(VmTest, ErrorMessageParity) {
  const State s = state(1, 2);
  // Unbound local: closed-expression contract, empty environment.
  expect_parity(ex::local("ghost"), &s, nullptr);
  // Primed variable without a next state.
  expect_parity(ex::primed_var(x), &s, nullptr);
  // No current state at all.
  expect_parity(ex::var(x), nullptr, nullptr);
  // Kind mismatch surfaces the accessor's message through both paths.
  expect_parity(ex::add(ex::var(x), ex::boolean(true)), &s, nullptr);
  // Sequence index out of range.
  expect_parity(ex::index(ex::make_tuple({ex::var(x)}), ex::integer(5)), &s,
                nullptr);
  // Non-boolean where a boolean is required.
  expect_parity(ex::land(ex::integer(3), ex::boolean(true)), &s, nullptr);
}

TEST_F(VmTest, RunBoolRejectsNonBoolean) {
  vm::Program p = vm::compile(ex::add(ex::integer(1), ex::integer(2)));
  vm::VmContext ctx;
  try {
    vm::run_bool(p, ctx);
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& ex) {
    EXPECT_STREQ(ex.what(), "eval: expected a boolean, got 3");
  }
}

TEST_F(VmTest, ShortCircuitIsLazy) {
  const State s = state(0, 2);
  // The right operand would trap (x = 0 -> index 0 out of range); the
  // tree never evaluates it, so neither must the VM.
  Expr guard = ex::gt(ex::var(x), ex::integer(0));
  Expr trap = ex::eq(ex::index(ex::make_tuple({ex::var(y)}), ex::var(x)),
                     ex::integer(2));
  expect_parity(ex::land(guard, trap), &s, nullptr);
  expect_parity(ex::lor(ex::lnot(guard), ex::boolean(true)), &s, nullptr);
  expect_parity(ex::implies(guard, trap), &s, nullptr);
  expect_parity(ex::ite(guard, trap, ex::boolean(false)), &s, nullptr);
}

TEST_F(VmTest, IndexIntoAliasedRegisterRegression) {
  // regs[dst] used to alias the tuple being indexed (dst == base register),
  // so the assignment destroyed the tuple mid-read. Pinned by the QueueHistory
  // FIFO invariant shape that exposed it.
  VarTable vt;
  const VarId h = vt.declare("h", range_domain(0, 1));
  const State s(std::vector<Value>{Value::tuple({Value::integer(7)})});
  Expr e = ex::implies(ex::boolean(true),
                       ex::eq(ex::index(ex::var(h), ex::integer(1)),
                              ex::integer(7)));
  vm::Program p = vm::compile(e);
  vm::VmContext ctx;
  ctx.vars = &vt;
  ctx.current = &s;
  EXPECT_TRUE(vm::run_bool(p, ctx));
}

TEST_F(VmTest, QuantifierOverEnabledParity) {
  // ENABLED delegates to the tree's witness search with the quantifier
  // scope rebuilt from local slots: \E i : ENABLED (x' = i) must see i.
  const State s = state(1, 2);
  Expr act = ex::eq(ex::primed_var(x), ex::local("i"));
  Expr e = ex::exists_val("i", range_domain(2, 3), ex::enabled(act));
  EvalContext tctx;
  tctx.vars = &vars;
  tctx.current = &s;
  vm::VmContext vctx;
  vctx.vars = &vars;
  vctx.current = &s;
  vm::Program p = vm::compile(e);
  EXPECT_EQ(eval_bool(e, tctx), vm::run_bool(p, vctx));
  EXPECT_TRUE(vm::run_bool(p, vctx));
  // Out-of-domain witness: i ranges over values x' can never take.
  Expr none = ex::exists_val("i", range_domain(7, 9), ex::enabled(act));
  vm::Program q = vm::compile(none);
  EXPECT_FALSE(vm::run_bool(q, vctx));
}

// ---------------------------------------------------------------------------
// CompiledExpr dispatch.

TEST_F(VmTest, TreeEvalSwitchDispatches) {
  const State s = state(2, 1);
  const vm::CompiledExpr ce(ex::add(ex::var(x), ex::var(y)));
  ASSERT_TRUE(ce.compiled());
  vm::VmContext ctx;
  ctx.vars = &vars;
  ctx.current = &s;
  EXPECT_TRUE(ce.eval(ctx) == Value::integer(3));
  vm::set_tree_eval_for_test(true);
  EXPECT_TRUE(vm::tree_eval_forced());
  EXPECT_TRUE(ce.eval(ctx) == Value::integer(3));
  vm::set_tree_eval_for_test(false);
  EXPECT_FALSE(vm::tree_eval_forced());
}

TEST_F(VmTest, QuantifierBodyRegisterReuseAcrossIterations) {
  // Each iteration re-executes the body with a fresh local; stale register
  // contents from iteration k must not leak into k+1's verdict.
  const State s = state(3, 0);
  Expr e = ex::forall_val(
      "i", range_domain(0, 3),
      ex::implies(ex::eq(ex::local("i"), ex::var(x)),
                  ex::ge(ex::mul(ex::local("i"), ex::local("i")),
                         ex::var(x))));
  expect_parity(e, &s, nullptr);
  Expr nested = ex::exists_val(
      "i", range_domain(0, 2),
      ex::forall_val("j", range_domain(0, 2),
                     ex::ge(ex::add(ex::local("i"), ex::local("j")),
                            ex::local("j"))));
  expect_parity(nested, &s, nullptr);
}

}  // namespace
}  // namespace opentla
