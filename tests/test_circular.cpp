// End-to-end reproduction of the Section 1 examples (Figure 1): two
// components with circular assumption/guarantee specifications.
//
//   Safety:   M_c^0 = "c always 0", M_d^0 = "d always 0".
//             (M_d^0 +> M_c^0) /\ (M_c^0 +> M_d^0)  =>  M_c^0 /\ M_d^0
//             is VALID, and the Composition Theorem discharges it.
//
//   Liveness: M_c^1 = "eventually c = 1", M_d^1 = "eventually d = 1".
//             The analogous implication is INVALID (the do-nothing
//             composition satisfies both A/G specs vacuously), and the
//             method rejects the liveness assumptions.

#include <gtest/gtest.h>

#include "opentla/ag/composition_theorem.hpp"
#include "opentla/compose/compose.hpp"
#include "opentla/semantics/enumerate.hpp"
#include "opentla/semantics/oracle.hpp"

namespace opentla {
namespace {

class CircularTest : public ::testing::Test {
 protected:
  CircularTest() {
    c = vars.declare("c", range_domain(0, 1));
    d = vars.declare("d", range_domain(0, 1));
    mc0 = always_zero(c, "Mc0");
    md0 = always_zero(d, "Md0");
    mc1 = eventually_one(c, "Mc1");
    md1 = eventually_one(d, "Md1");
  }

  CanonicalSpec always_zero(VarId v, std::string name) {
    CanonicalSpec s;
    s.name = std::move(name);
    s.init = ex::eq(ex::var(v), ex::integer(0));
    s.next = ex::bottom();  // [][FALSE]_v: v never changes
    s.sub = {v};
    return s;
  }

  CanonicalSpec eventually_one(VarId v, std::string name) {
    CanonicalSpec s;
    s.name = std::move(name);
    s.init = ex::top();
    s.next = ex::land(ex::eq(ex::var(v), ex::integer(0)),
                      ex::eq(ex::primed_var(v), ex::integer(1)));
    s.sub = {v};
    Fairness wf;
    wf.kind = Fairness::Kind::Weak;
    wf.sub = {v};
    wf.action = s.next;
    wf.label = "WF(set-" + s.name + ")";
    s.fairness.push_back(wf);
    return s;
  }

  VarTable vars;
  VarId c = 0, d = 0;
  CanonicalSpec mc0, md0, mc1, md1;
};

TEST_F(CircularTest, SafetyImplicationIsValidSemantically) {
  Formula lhs = tf::land(tf::while_plus(md0, mc0), tf::while_plus(mc0, md0));
  Formula rhs = tf::land(tf::spec(mc0), tf::spec(md0));
  BoundedValidity r = check_validity_bounded(vars, tf::implies(lhs, rhs), 3);
  EXPECT_TRUE(r.valid) << (r.violation ? r.violation->to_string(vars) : "");
  EXPECT_GT(r.behaviors_checked, 100u);
}

TEST_F(CircularTest, PlainImplicationFormIsNotValid) {
  // With E => M instead of E +> M the circular argument genuinely fails:
  // the behavior where both c and d jump to 1 simultaneously satisfies
  // (Md0 => Mc0) /\ (Mc0 => Md0) vacuously but not Mc0 /\ Md0.
  Formula lhs = tf::land(tf::implies(tf::spec(md0), tf::spec(mc0)),
                         tf::implies(tf::spec(mc0), tf::spec(md0)));
  Formula rhs = tf::land(tf::spec(mc0), tf::spec(md0));
  BoundedValidity r = check_validity_bounded(vars, tf::implies(lhs, rhs), 3);
  EXPECT_FALSE(r.valid);
}

TEST_F(CircularTest, CompositionTheoremDischargesSafetyExample) {
  std::vector<AGSpec> components = {{md0, mc0}, {mc0, md0}};
  AGSpec goal = property_as_ag(conjunction_as_spec({mc0, md0}, "Mc0AndMd0"));
  ProofReport report = verify_composition(vars, components, goal);
  EXPECT_TRUE(report.all_discharged()) << report.to_string();
}

TEST_F(CircularTest, LivenessImplicationIsInvalidSemantically) {
  Formula lhs = tf::land(tf::while_plus(md1, mc1), tf::while_plus(mc1, md1));
  Formula rhs = tf::land(tf::spec(mc1), tf::spec(md1));
  BoundedValidity r = check_validity_bounded(vars, tf::implies(lhs, rhs), 2);
  EXPECT_FALSE(r.valid);
  ASSERT_TRUE(r.violation.has_value());
  // The classic counterexample: nobody ever moves.
  Oracle oracle(vars);
  EXPECT_TRUE(oracle.evaluate(lhs, *r.violation));
  EXPECT_FALSE(oracle.evaluate(rhs, *r.violation));
}

TEST_F(CircularTest, TheoremRejectsLivenessAssumptions) {
  std::vector<AGSpec> components = {{md1, mc1}, {mc1, md1}};
  AGSpec goal = property_as_ag(conjunction_as_spec({mc1, md1}, "Mc1AndMd1"));
  ProofReport report = verify_composition(vars, components, goal);
  EXPECT_FALSE(report.all_discharged());
  ASSERT_FALSE(report.obligations.empty());
  EXPECT_EQ(report.obligations[0].id, "safety-assumption");
}

TEST_F(CircularTest, ProcessesImplementTheirAGSpecs) {
  // Pi_c repeatedly sets c := d; it guarantees Mc0 assuming Md0. Semantics:
  // Pi_c = (c = 0) /\ [][c' = d /\ d' = d]_c. Check Pi_c => (Md0 +> Mc0).
  CanonicalSpec pi_c;
  pi_c.name = "PiC";
  pi_c.init = ex::eq(ex::var(c), ex::integer(0));
  pi_c.next = ex::land(ex::eq(ex::primed_var(c), ex::var(d)), ex::unchanged({d}));
  pi_c.sub = {c};
  Formula claim = tf::implies(tf::spec(pi_c), tf::while_plus(md0, mc0));
  BoundedValidity r = check_validity_bounded(vars, claim, 3);
  EXPECT_TRUE(r.valid) << (r.violation ? r.violation->to_string(vars) : "");
}

}  // namespace
}  // namespace opentla
