// Tests for Propositions 1-4 as reduction rules (opentla/ag/propositions)
// and the paper-route discharge of hypothesis 2(a) via Propositions 3 and 4
// (Figure 9, steps 2.1/2.2).

#include <gtest/gtest.h>

#include "opentla/ag/composition_theorem.hpp"
#include "opentla/ag/propositions.hpp"
#include "opentla/check/machine_closure.hpp"
#include "opentla/compose/compose.hpp"
#include "opentla/queue/double_queue.hpp"
#include "opentla/queue/queue_spec.hpp"

namespace opentla {
namespace {

TEST(Prop1, AcceptsSubActionFairness) {
  QueueSystem sys = make_queue_system(2, 2);
  Prop1Result r = prop1_closure(sys.specs.queue);
  EXPECT_TRUE(r.obligation);
  EXPECT_TRUE(r.closure.fairness.empty());
  EXPECT_EQ(r.closure.hidden, sys.specs.queue.hidden);
}

TEST(Prop1, RejectsFairnessOutsideNext) {
  QueueSystem sys = make_queue_system(2, 2);
  CanonicalSpec bad = sys.specs.queue;
  Fairness f;
  f.kind = Fairness::Kind::Weak;
  f.sub = bad.sub;
  // An action that is NOT a disjunct of N: acknowledging the output.
  f.action = ack_action(sys.out);
  f.label = "WF(alien)";
  bad.fairness.push_back(std::move(f));
  EXPECT_FALSE(prop1_closure(bad).obligation);
}

TEST(Prop1, SemanticCheckAgreesOnSmallSpec) {
  VarTable vars;
  VarId x = vars.declare("x", range_domain(0, 1));
  CanonicalSpec s;
  s.name = "S";
  s.init = ex::eq(ex::var(x), ex::integer(0));
  s.next = ex::eq(ex::primed_var(x), ex::integer(1));
  s.sub = {x};
  Fairness ok;
  ok.kind = Fairness::Kind::Weak;
  ok.sub = {x};
  ok.action = s.next;
  s.fairness = {ok};
  EXPECT_TRUE(check_prop1_semantic(vars, s));
  // A fairness action that is not an [N]_v step.
  s.fairness[0].action = ex::eq(ex::primed_var(x), ex::sub(ex::integer(1), ex::var(x)));
  EXPECT_FALSE(check_prop1_semantic(vars, s));
}

TEST(Prop2, DetectsSharedHiddenVariables) {
  DoubleQueueSystem sys = make_double_queue(1, 2);
  // Legitimate: q1 and q2 are private.
  Obligation ok = prop2_side_conditions(
      sys.vars, {&sys.qe1, &sys.qm1, &sys.qm2}, sys.dbl.queue);
  EXPECT_TRUE(ok);
  // Violation: pretend both components hide q1.
  CanonicalSpec clash = sys.qm2;
  clash.hidden = {sys.q1};
  clash.sub.push_back(sys.q1);
  Obligation bad = prop2_side_conditions(sys.vars, {&sys.qm1, &clash}, sys.dbl.queue);
  EXPECT_FALSE(bad);
  EXPECT_NE(bad.detail.find("q1"), std::string::npos);
}

TEST(Prop3, SideConditionRequiresVarsInFreezeTuple) {
  DoubleQueueSystem sys = make_double_queue(1, 2);
  std::vector<VarId> all_visible = {sys.i.sig, sys.i.ack, sys.i.val, sys.z.sig, sys.z.ack,
                                    sys.z.val, sys.o.sig, sys.o.ack, sys.o.val};
  EXPECT_TRUE(prop3_side_condition(sys.vars, sys.dbl.queue.safety_part(), all_visible));
  // Dropping o from v breaks the condition (QM^dbl mentions o).
  std::vector<VarId> missing_o = {sys.i.sig, sys.i.ack, sys.i.val};
  Obligation bad = prop3_side_condition(sys.vars, sys.dbl.queue.safety_part(), missing_o);
  EXPECT_FALSE(bad);
}

TEST(Prop4, SideConditionsOnQueueComponents) {
  DoubleQueueSystem sys = make_double_queue(1, 2);
  // QE^dbl (outputs <i.snd, o.ack>) vs QM^dbl (outputs <i.ack, o.snd>).
  std::vector<VarId> m_out = {sys.i.ack, sys.o.sig, sys.o.val};
  Obligation ok = prop4_orthogonality(sys.vars, sys.dbl.env, sys.env_out,
                                      sys.dbl.queue.safety_part(), m_out);
  EXPECT_TRUE(ok) << ok.detail;
  // Sharing an output variable violates the interleaving shape.
  std::vector<VarId> overlapping = {sys.i.sig, sys.o.sig, sys.o.val};
  EXPECT_FALSE(prop4_orthogonality(sys.vars, sys.dbl.env, sys.env_out,
                                   sys.dbl.queue.safety_part(), overlapping));
}

TEST(Prop3Route, DischargesH2aForTheDoubleQueue) {
  DoubleQueueSystem sys = make_double_queue(1, 2);
  Prop3Route route;
  route.env_outputs = sys.env_out;                       // <i.snd, o.ack>
  route.guarantee_outputs = {sys.i.ack, sys.o.sig, sys.o.val};  // <i.ack, o.snd>
  CompositionOptions opts;
  opts.goal_witness = {{"q", sys.qbar}};
  std::vector<Obligation> obs =
      discharge_h2a_via_prop3(sys.vars, sys.components(), sys.goal(), route, opts);
  ASSERT_FALSE(obs.empty());
  for (const Obligation& ob : obs) {
    EXPECT_TRUE(ob.discharged) << ob.id << ": " << ob.detail;
  }
  // The route's steps are present: side conditions, 2.1, 2.2, conclusion.
  EXPECT_EQ(obs.back().id, "H2a(via Prop3)");
}

TEST(Prop3Route, OrthogonalityFailsWithoutG) {
  // Without the Disjoint component among the M_j, R admits a step that
  // falsifies QE^dbl and QM^dbl simultaneously, so step 2.1 must fail.
  DoubleQueueSystem sys = make_double_queue(1, 2);
  std::vector<AGSpec> components = {{sys.qe1, sys.qm1}, {sys.qe2, sys.qm2}};
  Prop3Route route;
  route.env_outputs = sys.env_out;
  route.guarantee_outputs = {sys.i.ack, sys.o.sig, sys.o.val};
  CompositionOptions opts;
  opts.goal_witness = {{"q", sys.qbar}};
  std::vector<Obligation> obs =
      discharge_h2a_via_prop3(sys.vars, components, sys.goal(), route, opts);
  bool failed_21 = false;
  for (const Obligation& ob : obs) {
    if (ob.id == "2.1" && !ob.discharged) failed_21 = true;
  }
  EXPECT_TRUE(failed_21);
}

TEST(HiddenAssumption, TheoremHandlesHiddenVariablesInE) {
  // A goal assumption with its own hidden variable: an environment with an
  // internal credit of 2 sends, EE k : ... Under it, a capacity-1 queue
  // implements a capacity-2 queue even with liveness — the environment can
  // never overfill it... actually at most 2 sends fit a 1-queue only if
  // drained; what we check is the plain corollary instance
  // (E +> M) => (E +> M) threading the hidden-E machinery end to end, plus
  // a false goal that must be refuted.
  VarTable vars;
  Channel in = declare_channel(vars, "i", range_domain(0, 1));
  Channel out = declare_channel(vars, "o", range_domain(0, 1));
  VarId k = vars.declare("k", range_domain(0, 2));
  VarId q = vars.declare("q", seq_domain(range_domain(0, 1), 2));

  // E: the queue environment with a hidden send credit.
  CanonicalSpec env;
  env.name = "BoundedEnv";
  env.init = ex::land(channel_init(in), ex::eq(ex::var(k), ex::integer(2)));
  Expr put = ex::land({ex::gt(ex::var(k), ex::integer(0)), send_any_action(in),
                       ex::eq(ex::primed_var(k), ex::sub(ex::var(k), ex::integer(1))),
                       channel_unchanged(out)});
  Expr get = ex::land(ack_action(out), channel_unchanged(in), ex::unchanged({k}));
  env.next = ex::lor(put, get);
  env.sub = {in.sig, in.val, out.ack, k};
  env.hidden = {k};

  QueueSpecs m = build_queue_specs(vars, in, out, q, /*capacity=*/1, "^h");
  CompositionOptions opts;
  opts.goal_witness = {{"q", ex::var(q)}, {"k", ex::constant(Value::integer(0))}};
  ProofReport identity = verify_refinement_corollary(vars, env, m.queue, m.queue, opts);
  EXPECT_TRUE(identity.all_discharged()) << identity.to_string();

  // A stronger goal guarantee — "the queue never acknowledges anything"
  // (its output i.ack stays 0) — must be refuted under the same E.
  CanonicalSpec silent;
  silent.name = "Silent";
  silent.init = ex::eq(ex::var(in.ack), ex::integer(0));
  silent.next = ex::bottom();
  silent.sub = {in.ack};
  ProofReport refuted = verify_refinement_corollary(vars, env, m.queue, silent, opts);
  EXPECT_FALSE(refuted.all_discharged());
}

TEST(MachineClosure, GraphCheckDetectsNonClosedSpec) {
  // x may step to 1; SF on a step that is enabled only at x = 1 while the
  // system can get stuck at... construct a spec where a reachable state has
  // no fair continuation: next allows 0->1 and 1->2; fairness demands
  // infinitely many 0->1 steps; from state 2 nothing is enabled and the
  // 0->1 step can never recur, yet WF is satisfiable (disabled forever) —
  // so instead demand SF on 0->1 with a trap: SF is satisfied when the
  // action is eventually never enabled. To genuinely break machine
  // closure, use fairness on an action outside N: every behavior reaching
  // 2 can still only stutter, but the fairness action 2->0 is NOT in N, so
  // <A>_v steps never happen while A stays enabled at 2: no fair
  // continuation from 2.
  VarTable vars;
  VarId x = vars.declare("x", range_domain(0, 2));
  CanonicalSpec s;
  s.name = "Trap";
  s.init = ex::eq(ex::var(x), ex::integer(0));
  Expr step01 = ex::land(ex::eq(ex::var(x), ex::integer(0)),
                         ex::eq(ex::primed_var(x), ex::integer(1)));
  Expr step12 = ex::land(ex::eq(ex::var(x), ex::integer(1)),
                         ex::eq(ex::primed_var(x), ex::integer(2)));
  s.next = ex::lor(step01, step12);
  s.sub = {x};
  Fairness wf;
  wf.kind = Fairness::Kind::Weak;
  wf.sub = {x};
  wf.action = ex::land(ex::eq(ex::var(x), ex::integer(2)),
                       ex::eq(ex::primed_var(x), ex::integer(0)));  // not in N!
  wf.label = "WF(escape)";
  s.fairness = {wf};

  EXPECT_FALSE(check_prop1_syntactic(s));

  StateGraph g = build_composite_graph(vars, {{s.safety_part(), true}});
  MachineClosureResult mc = check_machine_closure_on_graph(g, s);
  EXPECT_FALSE(mc.machine_closed) << mc.detail;
}

}  // namespace
}  // namespace opentla
