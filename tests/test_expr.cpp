// Unit tests for expression construction, evaluation (state functions and
// actions), ENABLED, and printing (opentla/expr).

#include <gtest/gtest.h>

#include <cstdint>

#include "opentla/expr/eval.hpp"
#include "opentla/expr/expr.hpp"
#include "opentla/expr/substitute.hpp"
#include "opentla/state/var_table.hpp"

namespace opentla {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  ExprTest() {
    x = vars.declare("x", range_domain(0, 3));
    y = vars.declare("y", range_domain(0, 3));
    q = vars.declare("q", seq_domain(range_domain(0, 1), 2));
  }

  State state(std::int64_t xv, std::int64_t yv, Value qv = Value::empty_seq()) {
    return State({Value::integer(xv), Value::integer(yv), std::move(qv)});
  }

  VarTable vars;
  VarId x = 0, y = 0, q = 0;
};

TEST_F(ExprTest, ArithmeticAndComparison) {
  State s = state(2, 3);
  EXPECT_EQ(eval_fn(ex::add(ex::var(x), ex::integer(5)), vars, s), Value::integer(7));
  EXPECT_EQ(eval_fn(ex::mul(ex::var(x), ex::var(y)), vars, s), Value::integer(6));
  EXPECT_EQ(eval_fn(ex::sub(ex::integer(1), ex::var(x)), vars, s), Value::integer(-1));
  EXPECT_EQ(eval_fn(ex::neg(ex::var(y)), vars, s), Value::integer(-3));
  EXPECT_TRUE(eval_pred(ex::lt(ex::var(x), ex::var(y)), vars, s));
  EXPECT_FALSE(eval_pred(ex::ge(ex::var(x), ex::var(y)), vars, s));
  EXPECT_TRUE(eval_pred(ex::le(ex::var(x), ex::integer(2)), vars, s));
  EXPECT_TRUE(eval_pred(ex::neq(ex::var(x), ex::var(y)), vars, s));
}

TEST_F(ExprTest, BooleanConnectives) {
  State s = state(1, 2);
  Expr t = ex::top();
  Expr f = ex::bottom();
  EXPECT_TRUE(eval_pred(ex::land(t, t), vars, s));
  EXPECT_FALSE(eval_pred(ex::land(t, f), vars, s));
  EXPECT_TRUE(eval_pred(ex::lor(f, t), vars, s));
  EXPECT_TRUE(eval_pred(ex::implies(f, f), vars, s));
  EXPECT_FALSE(eval_pred(ex::implies(t, f), vars, s));
  EXPECT_TRUE(eval_pred(ex::equiv(f, f), vars, s));
  EXPECT_TRUE(eval_pred(!f, vars, s));
  // Empty conjunction is TRUE, empty disjunction FALSE.
  EXPECT_TRUE(eval_pred(ex::land(std::vector<Expr>{}), vars, s));
  EXPECT_FALSE(eval_pred(ex::lor(std::vector<Expr>{}), vars, s));
}

TEST_F(ExprTest, ShortCircuitSkipsIllTypedBranch) {
  // x = 0 /\ Head(q) = 0 must not evaluate Head(<<>>) when x # 0.
  State s = state(1, 0);
  Expr e = ex::land(ex::eq(ex::var(x), ex::integer(0)),
                    ex::eq(ex::head(ex::var(q)), ex::integer(0)));
  EXPECT_FALSE(eval_pred(e, vars, s));
}

TEST_F(ExprTest, SequenceOperators) {
  Value q12 = Value::tuple({Value::integer(1), Value::integer(0)});
  State s = state(0, 0, q12);
  EXPECT_EQ(eval_fn(ex::len(ex::var(q)), vars, s), Value::integer(2));
  EXPECT_EQ(eval_fn(ex::head(ex::var(q)), vars, s), Value::integer(1));
  EXPECT_EQ(eval_fn(ex::tail(ex::var(q)), vars, s), Value::tuple({Value::integer(0)}));
  EXPECT_EQ(eval_fn(ex::append(ex::var(q), ex::integer(1)), vars, s),
            Value::tuple({Value::integer(1), Value::integer(0), Value::integer(1)}));
  EXPECT_EQ(eval_fn(ex::concat(ex::var(q), ex::var(q)), vars, s).length(), 4u);
  EXPECT_EQ(eval_fn(ex::make_tuple({ex::var(x), ex::var(y)}), vars, s),
            Value::tuple({Value::integer(0), Value::integer(0)}));
}

TEST_F(ExprTest, ModuloAndIndexing) {
  State s = state(3, 2, Value::tuple({Value::integer(1), Value::integer(0)}));
  EXPECT_EQ(eval_fn(ex::mod(ex::var(x), ex::integer(2)), vars, s), Value::integer(1));
  EXPECT_EQ(eval_fn(ex::mod(ex::var(y), ex::var(y)), vars, s), Value::integer(0));
  EXPECT_THROW(eval_fn(ex::mod(ex::var(x), ex::integer(0)), vars, s), std::runtime_error);
  EXPECT_THROW(eval_fn(ex::mod(ex::var(x), ex::integer(-2)), vars, s), std::runtime_error);
  // Floored modulo (TLC): the result has the divisor's sign, so -3 % 2 = 1.
  EXPECT_EQ(eval_fn(ex::mod(ex::neg(ex::var(x)), ex::integer(2)), vars, s),
            Value::integer(1));
  EXPECT_EQ(eval_fn(ex::mod(ex::integer(-4), ex::integer(4)), vars, s), Value::integer(0));
  EXPECT_EQ(eval_fn(ex::mod(ex::integer(-1), ex::integer(5)), vars, s), Value::integer(4));
  EXPECT_EQ(eval_fn(ex::index(ex::var(q), ex::integer(1)), vars, s), Value::integer(1));
  EXPECT_EQ(eval_fn(ex::index(ex::var(q), ex::var(y)), vars, s), Value::integer(0));
  EXPECT_THROW(eval_fn(ex::index(ex::var(q), ex::integer(0)), vars, s), std::runtime_error);
  EXPECT_THROW(eval_fn(ex::index(ex::var(q), ex::integer(3)), vars, s), std::runtime_error);
  EXPECT_EQ(ex::index(ex::var(q), ex::integer(2)).to_string(vars), "q[2]");
  EXPECT_EQ(ex::mod(ex::var(x), ex::integer(2)).to_string(vars), "x % 2");
}

TEST_F(ExprTest, ArithmeticOverflowIsAnEvalError) {
  // Overflow must surface as an eval error, never as a wrapped value (and
  // never as signed-overflow UB — the sanitizer build checks this too).
  State s = state(0, 0);
  const Expr max = ex::integer(INT64_MAX);
  const Expr min = ex::integer(INT64_MIN);
  EXPECT_THROW(eval_fn(ex::add(max, ex::integer(1)), vars, s), std::runtime_error);
  EXPECT_THROW(eval_fn(ex::sub(min, ex::integer(1)), vars, s), std::runtime_error);
  EXPECT_THROW(eval_fn(ex::mul(max, ex::integer(2)), vars, s), std::runtime_error);
  EXPECT_THROW(eval_fn(ex::mul(min, ex::integer(-1)), vars, s), std::runtime_error);
  EXPECT_THROW(eval_fn(ex::neg(min), vars, s), std::runtime_error);
  // The boundary cases right below overflow still evaluate.
  EXPECT_EQ(eval_fn(ex::add(max, ex::integer(0)), vars, s), Value::integer(INT64_MAX));
  EXPECT_EQ(eval_fn(ex::sub(min, ex::integer(0)), vars, s), Value::integer(INT64_MIN));
  EXPECT_EQ(eval_fn(ex::neg(ex::integer(INT64_MAX)), vars, s),
            Value::integer(-INT64_MAX));
}

TEST_F(ExprTest, QuantifierBindingPoppedWhenBodyThrows) {
  // An eval error inside a quantifier body must not leave the bound
  // variable in the (reused) context — the scope guard pops it.
  State s = state(0, 0);
  EvalContext ctx;
  ctx.vars = &vars;
  ctx.current = &s;
  // Head(q) throws on the empty sequence, aborting the quantifier body.
  Expr bad = ex::exists_val("v", range_domain(0, 3),
                            ex::eq(ex::head(ex::var(q)), ex::local("v")));
  EXPECT_THROW(eval(bad, ctx), std::runtime_error);
  EXPECT_TRUE(ctx.locals.empty());
  // The context stays usable: an unbound 'v' is still an error ...
  EXPECT_THROW(eval(ex::local("v"), ctx), std::runtime_error);
  // ... and ordinary evaluation proceeds normally.
  EXPECT_EQ(eval(ex::add(ex::var(x), ex::integer(1)), ctx), Value::integer(1));
}

TEST_F(ExprTest, Conditional) {
  State s = state(2, 0);
  Expr e = ex::ite(ex::gt(ex::var(x), ex::integer(1)), ex::str("big"), ex::str("small"));
  EXPECT_EQ(eval_fn(e, vars, s), Value::string("big"));
}

TEST_F(ExprTest, BoundedQuantifiers) {
  State s = state(2, 0);
  // \E v \in 0..3 : v + v = x
  Expr exists = ex::exists_val(
      "v", range_domain(0, 3),
      ex::eq(ex::add(ex::local("v"), ex::local("v")), ex::var(x)));
  EXPECT_TRUE(eval_pred(exists, vars, s));
  // \A v \in 0..3 : v <= x is false for x = 2.
  Expr forall =
      ex::forall_val("v", range_domain(0, 3), ex::le(ex::local("v"), ex::var(x)));
  EXPECT_FALSE(eval_pred(forall, vars, s));
  // Nested binding shadows.
  Expr nested = ex::exists_val(
      "v", range_domain(0, 0),
      ex::exists_val("v", range_domain(3, 3), ex::eq(ex::local("v"), ex::integer(3))));
  EXPECT_TRUE(eval_pred(nested, vars, s));
}

TEST_F(ExprTest, ActionsReadPrimedFromNextState) {
  State s = state(1, 2);
  State t = state(2, 2);
  Expr incr = ex::eq(ex::primed_var(x), ex::add(ex::var(x), ex::integer(1)));
  EXPECT_TRUE(eval_action(incr, vars, s, t));
  EXPECT_FALSE(eval_action(incr, vars, t, s));
  EXPECT_TRUE(eval_action(ex::unchanged({y}), vars, s, t));
  EXPECT_FALSE(eval_action(ex::unchanged({x}), vars, s, t));
}

TEST_F(ExprTest, PrimedVariableInStateFunctionContextThrows) {
  State s = state(0, 0);
  EXPECT_THROW(eval_pred(ex::eq(ex::primed_var(x), ex::integer(0)), vars, s),
               std::runtime_error);
}

TEST_F(ExprTest, PrimeTransform) {
  Expr e = ex::add(ex::var(x), ex::var(y));
  Expr ep = prime(e);
  State s = state(1, 1);
  State t = state(2, 3);
  EvalContext ctx;
  ctx.vars = &vars;
  ctx.current = &s;
  ctx.next = &t;
  EXPECT_EQ(eval(ep, ctx), Value::integer(5));
  EXPECT_THROW(prime(ep), std::runtime_error);
  EXPECT_THROW(prime(ex::enabled(ex::top())), std::runtime_error);
}

TEST_F(ExprTest, EnabledSimpleGuard) {
  // ENABLED (x < 3 /\ x' = x + 1) is true iff x < 3.
  Expr act = ex::land(ex::lt(ex::var(x), ex::integer(3)),
                      ex::eq(ex::primed_var(x), ex::add(ex::var(x), ex::integer(1))));
  EXPECT_TRUE(eval_enabled(act, vars, state(2, 0)));
  EXPECT_FALSE(eval_enabled(act, vars, state(3, 0)));
}

TEST_F(ExprTest, EnabledRespectsDomainBounds) {
  // x' = x + 1 is disabled at the top of the domain: no successor exists
  // within the declared space.
  Expr act = ex::eq(ex::primed_var(x), ex::add(ex::var(x), ex::integer(1)));
  EXPECT_TRUE(eval_enabled(act, vars, state(2, 0)));
  EXPECT_FALSE(eval_enabled(act, vars, state(3, 0)));
}

TEST_F(ExprTest, EnabledWithResidualConstraint) {
  // ENABLED (x' # x /\ x' # 3) — needs enumeration of x'.
  Expr act = ex::land(ex::neq(ex::primed_var(x), ex::var(x)),
                      ex::neq(ex::primed_var(x), ex::integer(3)));
  EXPECT_TRUE(eval_enabled(act, vars, state(0, 0)));
  // From any state some x' in {0..2}\{x} exists, so always enabled.
  EXPECT_TRUE(eval_enabled(act, vars, state(3, 0)));
}

TEST_F(ExprTest, EnabledAsStatePredicateInsideEval) {
  Expr act = ex::land(ex::lt(ex::var(x), ex::integer(3)),
                      ex::eq(ex::primed_var(x), ex::add(ex::var(x), ex::integer(1))));
  Expr pred = ex::enabled(act);
  EXPECT_TRUE(eval_pred(pred, vars, state(0, 0)));
  EXPECT_FALSE(eval_pred(pred, vars, state(3, 0)));
}

TEST_F(ExprTest, Printing) {
  Expr e = ex::land(ex::lt(ex::var(x), ex::integer(3)),
                    ex::eq(ex::primed_var(x), ex::add(ex::var(x), ex::integer(1))));
  EXPECT_EQ(e.to_string(vars), "x < 3 /\\ x' = x + 1");
  EXPECT_EQ(ex::unchanged({x, y}).to_string(vars), "x' = x /\\ y' = y");
  EXPECT_EQ(ex::make_tuple({ex::var(x)}).to_string(vars), "<<x>>");
}

TEST_F(ExprTest, RenameAndSubstitute) {
  Expr e = ex::eq(ex::primed_var(x), ex::add(ex::var(y), ex::integer(1)));
  Expr renamed = rename_vars(e, {{x, y}, {y, x}});
  EXPECT_EQ(renamed.to_string(vars), "y' = x + 1");
  Expr substituted = substitute_vars(e, {{y, ex::integer(7)}});
  EXPECT_EQ(substituted.to_string(vars), "x' = 7 + 1");
  // Substituting into a primed occurrence primes the replacement.
  Expr e2 = ex::eq(ex::primed_var(y), ex::integer(0));
  Expr s2 = substitute_vars(e2, {{y, ex::var(x)}});
  EXPECT_EQ(s2.to_string(vars), "x' = 0");
}

}  // namespace
}  // namespace opentla
