// Unit tests for proof obligations, reports, and the freeze_spec builder's
// error handling (opentla/proof, opentla/ag/freeze_spec).

#include <gtest/gtest.h>

#include <thread>

#include "opentla/ag/freeze_spec.hpp"
#include "opentla/proof/report.hpp"

namespace opentla {
namespace {

TEST(ProofReport, AllDischargedAndRendering) {
  ProofReport report;
  report.theorem = "A => B";
  Obligation ok;
  ok.id = "H1";
  ok.description = "first hypothesis";
  ok.method = "test";
  ok.discharged = true;
  ok.millis = 1.5;
  report.add(ok);
  EXPECT_TRUE(report.all_discharged());
  EXPECT_DOUBLE_EQ(report.total_millis(), 1.5);

  Obligation bad;
  bad.id = "H2";
  bad.description = "second hypothesis";
  bad.method = "test";
  bad.discharged = false;
  bad.detail = "counterexample: ...";
  report.add(bad);
  EXPECT_FALSE(report.all_discharged());

  const std::string text = report.to_string();
  EXPECT_NE(text.find("THEOREM A => B"), std::string::npos);
  EXPECT_NE(text.find("[ok] H1"), std::string::npos);
  EXPECT_NE(text.find("[FAILED] H2"), std::string::npos);
  EXPECT_NE(text.find("NOT PROVED"), std::string::npos);
  EXPECT_EQ(text.find("Q.E.D."), std::string::npos);
}

TEST(ProofReport, QedWhenEverythingDischarges) {
  ProofReport report;
  report.theorem = "T";
  Obligation ob;
  ob.id = "X";
  ob.discharged = true;
  report.add(ob);
  EXPECT_NE(report.to_string().find("Q.E.D."), std::string::npos);
}

TEST(ObligationTimer, MeasuresElapsedTime) {
  Obligation ob;
  {
    ObligationTimer timer(ob);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(ob.millis, 4.0);
}

TEST(FreezeSpec, RejectsUnsupportedInputs) {
  VarTable vars;
  VarId x = vars.declare("x", range_domain(0, 1));
  VarId h = vars.declare("h", range_domain(0, 1));
  VarId b = vars.declare("b", bool_domain());

  CanonicalSpec with_fairness;
  with_fairness.name = "F";
  with_fairness.init = ex::top();
  with_fairness.next = ex::top();
  with_fairness.sub = {x};
  Fairness f;
  f.kind = Fairness::Kind::Weak;
  f.sub = {x};
  f.action = ex::top();
  with_fairness.fairness = {f};
  EXPECT_THROW(freeze_spec(with_fairness, {x}, b), std::runtime_error);

  CanonicalSpec with_hidden;
  with_hidden.name = "H";
  with_hidden.init = ex::top();
  with_hidden.next = ex::top();
  with_hidden.sub = {x, h};
  with_hidden.hidden = {h};
  EXPECT_THROW(freeze_spec(with_hidden, {x}, b), std::runtime_error);
}

TEST(FreezeSpec, ShapeOfTheExplicitForm) {
  VarTable vars;
  VarId x = vars.declare("x", range_domain(0, 1));
  VarId y = vars.declare("y", range_domain(0, 1));
  VarId b = vars.declare("b", bool_domain());
  CanonicalSpec e;
  e.name = "E";
  e.init = ex::eq(ex::var(x), ex::integer(0));
  e.next = ex::bottom();
  e.sub = {x};
  CanonicalSpec fz = freeze_spec(e, {x, y}, b);
  EXPECT_EQ(fz.name, "E_plus");
  EXPECT_EQ(fz.hidden, std::vector<VarId>{b});
  // Subscript covers E's subscript, the freeze tuple, and the flag.
  EXPECT_EQ(fz.sub.size(), 3u);
  EXPECT_TRUE(fz.fairness.empty());
}

}  // namespace
}  // namespace opentla
