// End-to-end reproduction of Sections A.4-A.5: two queues in series
// implement a (2N+1)-element queue.
//
//   - CDQ => CQ^dbl by refinement mapping (Section A.4);
//   - the Composition Theorem instance (4):
//       G /\ (QE^1 +> QM^1) /\ (QE^2 +> QM^2)  =>  (QE^dbl +> QM^dbl)
//     with all hypotheses discharged mechanically (Figure 9);
//   - the unconditioned implication (3) — without G — is INVALID, with a
//     concrete counterexample step.

#include <gtest/gtest.h>

#include "opentla/ag/composition_theorem.hpp"
#include "opentla/expr/analysis.hpp"
#include "opentla/check/invariant.hpp"
#include "opentla/check/refinement.hpp"
#include "opentla/compose/compose.hpp"
#include "opentla/queue/double_queue.hpp"

namespace opentla {
namespace {

class DoubleQueueTest : public ::testing::Test {
 protected:
  DoubleQueueTest() : sys(make_double_queue(/*capacity=*/1, /*num_values=*/2)) {}

  CompositionOptions options() {
    CompositionOptions opts;
    opts.goal_witness = {{"q", sys.qbar}};
    return opts;
  }

  DoubleQueueSystem sys;
};

TEST_F(DoubleQueueTest, RenamedComponentsActOnTheRightChannels) {
  // QM^1 = QM[z/o, q1/q] buffers in q1 and writes z.
  FreeVars fv1 = free_vars(sys.qm1.next);
  EXPECT_TRUE(fv1.primed.contains(sys.q1));
  EXPECT_TRUE(fv1.primed.contains(sys.z.sig));
  EXPECT_FALSE(fv1.primed.contains(sys.o.sig));
  EXPECT_FALSE(fv1.primed.contains(sys.q));
  // QM^2 = QM[z/i, q2/q] reads z and writes o.
  FreeVars fv2 = free_vars(sys.qm2.next);
  EXPECT_TRUE(fv2.primed.contains(sys.q2));
  EXPECT_TRUE(fv2.primed.contains(sys.o.sig));
  EXPECT_FALSE(fv2.primed.contains(sys.i.sig));
}

TEST_F(DoubleQueueTest, CdqRefinesTheBigQueue) {
  // Section A.4: CDQ => CQ^dbl via the refinement mapping
  // q |-> q2 \o buffer(z) \o q1.
  StateGraph low = build_composite_graph(
      sys.vars, {{make_cdq(sys).unhidden(), true},
                 {make_pin(sys.vars, {sys.q}, "PinQ"), false}},
      /*free_tuples=*/{}, /*pinned=*/{sys.q});
  EXPECT_GT(low.num_states(), 20u);

  RefinementMapping mapping = mapping_by_name(sys.vars, sys.vars, {{"q", sys.qbar}});
  RefinementResult r =
      check_refinement(low, make_cdq(sys).fairness, sys.dbl.complete, mapping);
  EXPECT_TRUE(r.holds) << r.failed_part << "\n"
                       << format_trace(sys.vars, r.counterexample_prefix);
}

TEST_F(DoubleQueueTest, TotalBufferedNeverExceedsTwoNPlusOne) {
  StateGraph low = build_composite_graph(
      sys.vars, {{make_cdq(sys).unhidden(), true},
                 {make_pin(sys.vars, {sys.q}, "PinQ"), false}},
      /*free_tuples=*/{}, /*pinned=*/{sys.q});
  InvariantResult r = check_invariant(
      low, ex::le(ex::len(sys.qbar), ex::integer(2 * sys.capacity + 1)));
  EXPECT_TRUE(r.holds) << format_trace(sys.vars, r.counterexample);
  // And the bound is attained (the composition really holds 2N+1 items).
  InvariantResult tight = check_invariant(
      low, ex::lt(ex::len(sys.qbar), ex::integer(2 * sys.capacity + 1)));
  EXPECT_FALSE(tight.holds);
}

TEST_F(DoubleQueueTest, CompositionTheoremProvesFormulaFour) {
  ProofReport report =
      verify_composition(sys.vars, sys.components(), sys.goal(), options());
  EXPECT_TRUE(report.all_discharged()) << report.to_string();
  // Every hypothesis class appears in the report.
  bool saw_h1 = false, saw_h2a = false, saw_h2b = false;
  for (const Obligation& ob : report.obligations) {
    saw_h1 |= ob.id.rfind("H1", 0) == 0;
    saw_h2a |= ob.id == "H2a";
    saw_h2b |= ob.id == "H2b";
  }
  EXPECT_TRUE(saw_h1 && saw_h2a && saw_h2b);
}

TEST_F(DoubleQueueTest, FormulaThreeWithoutGIsInvalid) {
  // Dropping the interleaving side condition G makes the composition claim
  // false (Section A.5 explains why: simultaneous output changes).
  std::vector<AGSpec> components = {{sys.qe1, sys.qm1}, {sys.qe2, sys.qm2}};
  ProofReport report = verify_composition(sys.vars, components, sys.goal(), options());
  EXPECT_FALSE(report.all_discharged());
  // The failure must come with a concrete counterexample trace.
  bool found_failure_with_trace = false;
  for (const Obligation& ob : report.obligations) {
    if (!ob.discharged && ob.detail.find("counterexample") != std::string::npos) {
      found_failure_with_trace = true;
    }
  }
  EXPECT_TRUE(found_failure_with_trace) << report.to_string();
}

TEST_F(DoubleQueueTest, RefinementCorollaryWfSplitEquivalence) {
  // Figure 6's remark, proved via the Corollary in both directions: the
  // queue with WF(Enq) /\ WF(Deq) and the queue with WF(QM) implement each
  // other under the environment assumption QE.
  QueueSpecs q = build_queue_specs(sys.vars, sys.i, sys.o, sys.q, sys.capacity, "^wf");
  CanonicalSpec split = q.queue;
  split.name = "QM^split";
  split.fairness.clear();
  for (const auto& [action, label] :
       {std::pair{q.enq, "WF(Enq)"}, std::pair{q.deq, "WF(Deq)"}}) {
    Fairness wf;
    wf.kind = Fairness::Kind::Weak;
    wf.sub = q.queue.sub;
    wf.action = action;
    wf.label = label;
    split.fairness.push_back(std::move(wf));
  }
  CompositionOptions opts;
  opts.goal_witness = {{"q", ex::var(sys.q)}};
  ProofReport fwd = verify_refinement_corollary(sys.vars, q.env, split, q.queue, opts);
  EXPECT_TRUE(fwd.all_discharged()) << fwd.to_string();
  ProofReport bwd = verify_refinement_corollary(sys.vars, q.env, q.queue, split, opts);
  EXPECT_TRUE(bwd.all_discharged()) << bwd.to_string();
}

TEST_F(DoubleQueueTest, SmallerQueueRefinesLargerForSafetyButNotLiveness) {
  // The safety part of an N-queue implements the safety part of an
  // (N+1)-queue (every behavior is allowed), but NOT the full spec: the
  // bigger queue's WF promises to accept a second item the small queue
  // rejects. Both facts are checked; the liveness failure comes with a
  // lasso counterexample.
  QueueSpecs bigger = build_queue_specs(sys.vars, sys.i, sys.o, sys.q,
                                        sys.capacity + 1, "^bigger");
  QueueSpecs smaller = build_queue_specs(sys.vars, sys.i, sys.o, sys.q,
                                         sys.capacity, "^smaller");
  CompositionOptions opts;
  opts.goal_witness = {{"q", ex::var(sys.q)}};
  ProofReport safety = verify_refinement_corollary(
      sys.vars, smaller.env, smaller.queue.safety_part(), bigger.queue.safety_part(), opts);
  EXPECT_TRUE(safety.all_discharged()) << safety.to_string();
  ProofReport full = verify_refinement_corollary(sys.vars, smaller.env, smaller.queue,
                                                 bigger.queue, opts);
  EXPECT_FALSE(full.all_discharged());
  bool liveness_failed = false;
  for (const Obligation& ob : full.obligations) {
    if (!ob.discharged && ob.id == "H2b") liveness_failed = true;
  }
  EXPECT_TRUE(liveness_failed) << full.to_string();
}

TEST_F(DoubleQueueTest, RefinementCorollaryRejectsWrongDirection) {
  // The converse — a bigger queue implementing a smaller one — must fail:
  // the 2-queue can hold two items, which the 1-queue's guarantee forbids.
  QueueSpecs bigger = build_queue_specs(sys.vars, sys.i, sys.o, sys.q,
                                        sys.capacity + 1, "^bigger");
  QueueSpecs smaller = build_queue_specs(sys.vars, sys.i, sys.o, sys.q,
                                         sys.capacity, "^smaller");
  CompositionOptions opts;
  opts.goal_witness = {{"q", ex::var(sys.q)}};
  ProofReport report = verify_refinement_corollary(sys.vars, bigger.env, bigger.queue,
                                                   smaller.queue, opts);
  EXPECT_FALSE(report.all_discharged());
}

}  // namespace
}  // namespace opentla
