// The n-ary generalization of Appendix A: three queues in series implement
// a (3N+2)-element queue, proved by the Composition Theorem with four
// components (G plus the three stages) under one environment assumption.

#include <gtest/gtest.h>

#include "opentla/ag/composition_theorem.hpp"
#include "opentla/check/invariant.hpp"
#include "opentla/compose/compose.hpp"
#include "opentla/queue/double_queue.hpp"

namespace opentla {
namespace {

class TripleQueueTest : public ::testing::Test {
 protected:
  TripleQueueTest() : sys(make_triple_queue(/*capacity=*/1, /*num_values=*/2)) {}

  CompositionOptions options(bool interleaved_optimization = true) {
    CompositionOptions opts;
    opts.goal_witness = {{"q", sys.qbar}};
    if (interleaved_optimization) {
      // Sound here because G3 is among the components.
      opts.env_outputs = {sys.i.sig, sys.i.val, sys.o.ack};
      opts.component_outputs = {{},  // G3
                                {sys.z1.sig, sys.z1.val, sys.i.ack},
                                {sys.z2.sig, sys.z2.val, sys.z1.ack},
                                {sys.o.sig, sys.o.val, sys.z2.ack}};
    }
    return opts;
  }

  TripleQueueSystem sys;
};

TEST_F(TripleQueueTest, CompositionTheoremProvesTheChain) {
  ProofReport report =
      verify_composition(sys.vars, sys.components(), sys.goal(), options());
  EXPECT_TRUE(report.all_discharged()) << report.to_string();
  // All three component assumptions appear as H1 obligations.
  int h1_count = 0;
  for (const Obligation& ob : report.obligations) {
    if (ob.id.rfind("H1[QE", 0) == 0) ++h1_count;
  }
  EXPECT_EQ(h1_count, 3);
}

TEST_F(TripleQueueTest, WithoutGTheChainFails) {
  std::vector<AGSpec> components = {{sys.qe1, sys.qm1}, {sys.qe2, sys.qm2},
                                    {sys.qe3, sys.qm3}};
  // No G conjunct: the interleaving optimization would be unsound, so the
  // exhaustive exploration is used.
  ProofReport report = verify_composition(sys.vars, components, sys.goal(),
                                          options(/*interleaved_optimization=*/false));
  EXPECT_FALSE(report.all_discharged());
}

TEST_F(TripleQueueTest, InterleavingOptimizationPreservesTheProof) {
  // The optimized and exhaustive explorations must agree: same verdict and
  // the same product sizes in every obligation's statistics.
  ProofReport fast = verify_composition(sys.vars, sys.components(), sys.goal(), options());
  ProofReport slow = verify_composition(sys.vars, sys.components(), sys.goal(),
                                        options(/*interleaved_optimization=*/false));
  EXPECT_TRUE(fast.all_discharged());
  EXPECT_TRUE(slow.all_discharged());
  ASSERT_EQ(fast.obligations.size(), slow.obligations.size());
  for (std::size_t i = 0; i < fast.obligations.size(); ++i) {
    EXPECT_EQ(fast.obligations[i].discharged, slow.obligations[i].discharged);
    // Node/edge statistics (when present) must coincide.
    auto stats = [](const std::string& detail) {
      return detail.substr(0, detail.find('\n'));
    };
    EXPECT_EQ(stats(fast.obligations[i].detail), stats(slow.obligations[i].detail))
        << fast.obligations[i].id;
  }
}

TEST_F(TripleQueueTest, CapacityBoundIsExactlyThreeNPlusTwo) {
  // Explore the closed chain and check |qbar| <= 3N+2 and that the bound
  // is attained.
  std::vector<CompositePart> parts = {
      {sys.big.env, true},        {sys.qm1.unhidden(), true},
      {sys.qm2.unhidden(), true}, {sys.qm3.unhidden(), true},
      {sys.g, false},             {make_pin(sys.vars, {sys.q}, "PinQ"), false}};
  StateGraph low =
      build_composite_graph(sys.vars, parts, /*free_tuples=*/{}, /*pinned=*/{sys.q});
  const int cap = 3 * sys.capacity + 2;
  EXPECT_TRUE(check_invariant(low, ex::le(ex::len(sys.qbar), ex::integer(cap))).holds);
  EXPECT_FALSE(check_invariant(low, ex::lt(ex::len(sys.qbar), ex::integer(cap))).holds);
}

}  // namespace
}  // namespace opentla
