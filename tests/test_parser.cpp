// Unit tests for the mini-TLA lexer and parser (opentla/parser).

#include <gtest/gtest.h>

#include "opentla/expr/eval.hpp"
#include "opentla/parser/lexer.hpp"
#include "opentla/parser/parser.hpp"

namespace opentla {
namespace {

TEST(Lexer, OperatorsAndLiterals) {
  std::vector<Token> toks = tokenize("x' = 12 /\\ ~(y <= 3) \\/ q \\o <<\"a\">>");
  std::vector<TokenKind> kinds;
  for (const Token& t : toks) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::Ident, TokenKind::Prime, TokenKind::Eq, TokenKind::Number,
                       TokenKind::And, TokenKind::Not, TokenKind::LParen, TokenKind::Ident,
                       TokenKind::Le, TokenKind::Number, TokenKind::RParen, TokenKind::Or,
                       TokenKind::Ident, TokenKind::ConcatOp, TokenKind::LTuple,
                       TokenKind::String, TokenKind::RTuple, TokenKind::End}));
}

TEST(Lexer, CommentsAndDottedIdents) {
  std::vector<Token> toks = tokenize("i.sig \\* this is a comment\ni.ack");
  ASSERT_GE(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "i.sig");
  EXPECT_EQ(toks[1].kind, TokenKind::Newline);
  EXPECT_EQ(toks[2].text, "i.ack");
}

TEST(Lexer, RangeVersusDottedName) {
  std::vector<Token> toks = tokenize("0..3");
  EXPECT_EQ(toks[0].kind, TokenKind::Number);
  EXPECT_EQ(toks[1].kind, TokenKind::DotDot);
  EXPECT_EQ(toks[2].kind, TokenKind::Number);
}

TEST(Lexer, ErrorsCarryPosition) {
  try {
    tokenize("x = @");
    FAIL() << "expected lex error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("1:5"), std::string::npos);
  }
}

class ParseExprTest : public ::testing::Test {
 protected:
  ParseExprTest() {
    x = vars.declare("x", range_domain(0, 3));
    y = vars.declare("y", range_domain(0, 3));
    q = vars.declare("q", seq_domain(range_domain(0, 1), 2));
  }

  bool pred(const std::string& src, std::int64_t xv, std::int64_t yv) {
    State s({Value::integer(xv), Value::integer(yv), Value::empty_seq()});
    return eval_pred(parse_expression(src, vars), vars, s);
  }

  VarTable vars;
  VarId x = 0, y = 0, q = 0;
};

TEST_F(ParseExprTest, Precedence) {
  EXPECT_TRUE(pred("x + 1 * 2 = 3", 1, 0));          // * binds tighter than +
  EXPECT_TRUE(pred("x = 1 /\\ y = 2 \\/ y = 0", 1, 0));  // /\ tighter than \/
  EXPECT_TRUE(pred("~x = 1 \\/ x = 1", 1, 0));       // ~ applies to the comparison
  EXPECT_TRUE(pred("x = 0 => y = 9", 1, 2));         // implication is lazy
  EXPECT_TRUE(pred("(x = 1) <=> (y = 0)", 1, 0));
}

TEST_F(ParseExprTest, RightAssociativeImplication) {
  // a => b => c parses as a => (b => c): with a false the whole formula is
  // true, whereas the left-associative reading would demand c.
  EXPECT_TRUE(pred("x = 0 => x = 1 => y = 9", 3, 0));
}

TEST_F(ParseExprTest, SequencesAndCalls) {
  State s({Value::integer(0), Value::integer(0),
           Value::tuple({Value::integer(1), Value::integer(0)})});
  EXPECT_TRUE(eval_pred(parse_expression("Len(q) = 2 /\\ Head(q) = 1", vars), vars, s));
  EXPECT_TRUE(eval_pred(parse_expression("Tail(q) = <<0>>", vars), vars, s));
  EXPECT_TRUE(eval_pred(parse_expression("Append(q, 1) = q \\o <<1>>", vars), vars, s));
  EXPECT_TRUE(eval_pred(parse_expression("q # <<>>", vars), vars, s));
}

TEST_F(ParseExprTest, PrimesAndUnchanged) {
  State s({Value::integer(1), Value::integer(2), Value::empty_seq()});
  State t({Value::integer(2), Value::integer(2), Value::empty_seq()});
  EXPECT_TRUE(eval_action(parse_expression("x' = x + 1 /\\ UNCHANGED <<y, q>>", vars),
                          vars, s, t));
  EXPECT_TRUE(eval_action(parse_expression("(x + y)' = 4", vars), vars, s, t));
}

TEST_F(ParseExprTest, QuantifiersAndConditionals) {
  EXPECT_TRUE(pred("\\E v \\in 0..3 : v = x", 2, 0));
  EXPECT_FALSE(pred("\\A v \\in {0, 2} : v < x", 2, 0));
  EXPECT_TRUE(pred("IF x > y THEN x = 3 ELSE y >= x", 1, 2));
}

TEST_F(ParseExprTest, ModuloAndIndexing) {
  EXPECT_TRUE(pred("(x + y) % 2 = 1", 1, 2));
  State s({Value::integer(0), Value::integer(0),
           Value::tuple({Value::integer(1), Value::integer(0)})});
  EXPECT_TRUE(eval_pred(parse_expression("q[1] = 1 /\\ q[2] = 0", vars), vars, s));
  EXPECT_TRUE(eval_pred(parse_expression("q[Len(q)] = 0", vars), vars, s));
  EXPECT_THROW(eval_pred(parse_expression("q[3] = 0", vars), vars, s), std::runtime_error);
  // Precedence: % binds like *.
  EXPECT_TRUE(pred("1 + x % 2 = 2", 3, 0));
}

TEST_F(ParseExprTest, EnabledKeyword) {
  EXPECT_TRUE(pred("ENABLED(x < 3 /\\ x' = x + 1)", 0, 0));
  EXPECT_FALSE(pred("ENABLED(x < 3 /\\ x' = x + 1)", 3, 0));
}

TEST_F(ParseExprTest, Errors) {
  EXPECT_THROW(parse_expression("x +", vars), std::runtime_error);
  EXPECT_THROW(parse_expression("unknown_var = 1", vars), std::runtime_error);
  EXPECT_THROW(parse_expression("x = 1 x", vars), std::runtime_error);
  EXPECT_THROW(parse_expression("Head(q, q)", vars), std::runtime_error);
}

TEST(ParseModule, CounterRoundTrip) {
  const std::string src = R"(
MODULE Counter
VARIABLE x \in 0..3
DEFINE AtMax == x = 3
INIT x = 0
ACTION Incr == x < 3 /\ x' = x + 1
ACTION Reset == AtMax /\ x' = 0
NEXT Incr \/ Reset
SUBSCRIPT <<x>>
FAIRNESS WF Incr \/ Reset
)";
  ParsedModule mod = parse_module(src);
  EXPECT_EQ(mod.name, "Counter");
  EXPECT_EQ(mod.vars->size(), 1u);
  EXPECT_EQ(mod.spec.sub.size(), 1u);
  ASSERT_EQ(mod.spec.fairness.size(), 1u);
  EXPECT_EQ(mod.spec.fairness[0].kind, Fairness::Kind::Weak);

  const VarId x = mod.vars->require("x");
  State s0({Value::integer(0)});
  State s1({Value::integer(1)});
  EXPECT_TRUE(eval_pred(mod.spec.init, *mod.vars, s0));
  EXPECT_FALSE(eval_pred(mod.spec.init, *mod.vars, s1));
  EXPECT_TRUE(eval_action(mod.spec.next, *mod.vars, s0, s1));
  EXPECT_FALSE(eval_action(mod.spec.next, *mod.vars, s1, s0));  // Reset only from 3
  State s3({Value::integer(3)});
  EXPECT_TRUE(eval_action(mod.spec.next, *mod.vars, s3, s0));
  (void)x;
}

TEST(ParseModule, HiddenVariablesAndDomains) {
  const std::string src = R"(
MODULE Q
VARIABLE b \in BOOLEAN
HIDDEN q \in Seq({0, 1}, 2)
INIT q = <<>> /\ b = FALSE
NEXT q' = Append(q, 0) /\ b' = b
SUBSCRIPT <<b>>
)";
  ParsedModule mod = parse_module(src);
  EXPECT_EQ(mod.spec.hidden.size(), 1u);
  // The hidden variable is appended to the subscript automatically.
  EXPECT_EQ(mod.spec.sub.size(), 2u);
  EXPECT_EQ(mod.vars->domain(mod.vars->require("q")).size(), 7u);
  EXPECT_EQ(mod.vars->domain(mod.vars->require("b")).size(), 2u);
}

TEST(ParseModule, MissingPartsAreErrors) {
  EXPECT_THROW(parse_module("MODULE M\nVARIABLE x \\in 0..1\nNEXT x' = x"),
               std::runtime_error);
  EXPECT_THROW(parse_module("MODULE M\nVARIABLE x \\in 0..1\nINIT x = 0"),
               std::runtime_error);
}

TEST(ParseModule, MultiVariableDeclaration) {
  ParsedModule mod = parse_module(R"(
MODULE M
VARIABLES a \in 0..1, b \in 0..2
INIT a = 0 /\ b = 0
NEXT UNCHANGED <<a, b>>
)");
  EXPECT_EQ(mod.vars->size(), 2u);
  EXPECT_EQ(mod.spec.sub.size(), 2u);  // defaults to all variables
}

}  // namespace
}  // namespace opentla
