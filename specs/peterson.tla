MODULE Peterson
\* Peterson's mutual-exclusion algorithm for two processes.
\* pc: 0 = idle, 1 = requesting (flag raised), 2 = waiting, 3 = critical.
VARIABLES pc1 \in 0..3, pc2 \in 0..3
VARIABLES flag1 \in BOOLEAN, flag2 \in BOOLEAN, turn \in 1..2

DEFINE Request1 == pc1 = 0 /\ pc1' = 1 /\ flag1' = TRUE
                   /\ UNCHANGED <<pc2, flag2, turn>>
DEFINE Yield1   == pc1 = 1 /\ pc1' = 2 /\ turn' = 2
                   /\ UNCHANGED <<pc2, flag1, flag2>>
DEFINE Enter1   == pc1 = 2 /\ (flag2 = FALSE \/ turn = 1) /\ pc1' = 3
                   /\ UNCHANGED <<pc2, flag1, flag2, turn>>
DEFINE Exit1    == pc1 = 3 /\ pc1' = 0 /\ flag1' = FALSE
                   /\ UNCHANGED <<pc2, flag2, turn>>

DEFINE Request2 == pc2 = 0 /\ pc2' = 1 /\ flag2' = TRUE
                   /\ UNCHANGED <<pc1, flag1, turn>>
DEFINE Yield2   == pc2 = 1 /\ pc2' = 2 /\ turn' = 1
                   /\ UNCHANGED <<pc1, flag1, flag2>>
DEFINE Enter2   == pc2 = 2 /\ (flag1 = FALSE \/ turn = 2) /\ pc2' = 3
                   /\ UNCHANGED <<pc1, flag1, flag2, turn>>
DEFINE Exit2    == pc2 = 3 /\ pc2' = 0 /\ flag2' = FALSE
                   /\ UNCHANGED <<pc1, flag1, turn>>

DEFINE Proc1 == Request1 \/ Yield1 \/ Enter1 \/ Exit1
DEFINE Proc2 == Request2 \/ Yield2 \/ Enter2 \/ Exit2

INIT pc1 = 0 /\ pc2 = 0 /\ flag1 = FALSE /\ flag2 = FALSE /\ turn = 1
NEXT Proc1 \/ Proc2
SUBSCRIPT <<pc1, pc2, flag1, flag2, turn>>
\* Peterson is starvation-free under plain weak fairness of each process:
\* once a process waits at the gate, the turn variable can only move in
\* its favor. `tlacheck leadsto` verifies pc1 = 1 ~> pc1 = 3 below.
FAIRNESS WF Proc1
FAIRNESS WF Proc2
