MODULE Counter
\* A wrap-around counter: the smallest useful tlacheck target.
VARIABLE x \in 0..4

DEFINE AtMax == x = 4

INIT x = 0
ACTION Incr == x < 4 /\ x' = x + 1
ACTION Wrap == AtMax /\ x' = 0
NEXT Incr \/ Wrap
SUBSCRIPT <<x>>
FAIRNESS WF Incr \/ Wrap
