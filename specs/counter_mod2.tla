MODULE CounterMod2
\* The abstract view of Counter: only the parity of x. Counter refines this
\* module under the witness p = x - (x / 2) * 2 -- but mini-TLA has no
\* division, so use the equivalent table lookup below when invoking:
\*   tlacheck refine specs/counter.tla specs/counter_mod2.tla \
\*     --witness 'p=IF x = 0 \/ x = 2 \/ x = 4 THEN 0 ELSE 1'
VARIABLE p \in 0..1

INIT p = 0
NEXT p' = 1 - p
SUBSCRIPT <<p>>
