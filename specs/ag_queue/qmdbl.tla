MODULE QMdbl
\* The (2N+1)-element queue the composition implements (capacity 3).
VARIABLES i.sig \in 0..1, i.ack \in 0..1, i.val \in 0..1
VARIABLES o.sig \in 0..1, o.ack \in 0..1, o.val \in 0..1
HIDDEN q \in Seq(0..1, 3)

DEFINE Enq == Len(q) < 3
              /\ i.sig # i.ack /\ i.ack' = 1 - i.ack /\ i.sig' = i.sig /\ i.val' = i.val
              /\ q' = Append(q, i.val)
              /\ UNCHANGED <<o.sig, o.ack, o.val>>
DEFINE Deq == Len(q) > 0
              /\ o.sig = o.ack /\ o.val' = Head(q) /\ o.sig' = 1 - o.sig /\ o.ack' = o.ack
              /\ q' = Tail(q)
              /\ UNCHANGED <<i.sig, i.ack, i.val>>

INIT o.sig = 0 /\ o.ack = 0 /\ q = <<>>
NEXT Enq \/ Deq
SUBSCRIPT <<i.ack, o.sig, o.val, q>>
FAIRNESS WF Enq \/ Deq
