MODULE QE1
\* Queue 1's environment: sends on i, acknowledges on z.
VARIABLES i.sig \in 0..1, i.ack \in 0..1, i.val \in 0..1
VARIABLES z.sig \in 0..1, z.ack \in 0..1, z.val \in 0..1

DEFINE Put  == i.sig = i.ack /\ i.sig' = 1 - i.sig /\ i.ack' = i.ack
               /\ UNCHANGED <<z.sig, z.ack, z.val>>
DEFINE GetZ == z.sig # z.ack /\ z.ack' = 1 - z.ack /\ z.sig' = z.sig /\ z.val' = z.val
               /\ UNCHANGED <<i.sig, i.ack, i.val>>

INIT i.sig = 0 /\ i.ack = 0
NEXT Put \/ GetZ
SUBSCRIPT <<i.sig, i.val, z.ack>>
