MODULE QM1
\* Queue 1: buffers q1 between channels i and z (capacity 1).
VARIABLES i.sig \in 0..1, i.ack \in 0..1, i.val \in 0..1
VARIABLES z.sig \in 0..1, z.ack \in 0..1, z.val \in 0..1
HIDDEN q1 \in Seq(0..1, 1)

DEFINE Enq == Len(q1) < 1
              /\ i.sig # i.ack /\ i.ack' = 1 - i.ack /\ i.sig' = i.sig /\ i.val' = i.val
              /\ q1' = Append(q1, i.val)
              /\ UNCHANGED <<z.sig, z.ack, z.val>>
DEFINE Deq == Len(q1) > 0
              /\ z.sig = z.ack /\ z.val' = Head(q1) /\ z.sig' = 1 - z.sig /\ z.ack' = z.ack
              /\ q1' = Tail(q1)
              /\ UNCHANGED <<i.sig, i.ack, i.val>>

INIT z.sig = 0 /\ z.ack = 0 /\ q1 = <<>>
NEXT Enq \/ Deq
SUBSCRIPT <<i.ack, z.sig, z.val, q1>>
FAIRNESS WF Enq \/ Deq
