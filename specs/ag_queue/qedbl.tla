MODULE QEdbl
\* The big queue's environment: sends on i, acknowledges on o.
VARIABLES i.sig \in 0..1, i.ack \in 0..1, i.val \in 0..1
VARIABLES o.sig \in 0..1, o.ack \in 0..1, o.val \in 0..1

DEFINE Put == i.sig = i.ack /\ i.sig' = 1 - i.sig /\ i.ack' = i.ack
              /\ UNCHANGED <<o.sig, o.ack, o.val>>
DEFINE Get == o.sig # o.ack /\ o.ack' = 1 - o.ack /\ o.sig' = o.sig /\ o.val' = o.val
              /\ UNCHANGED <<i.sig, i.ack, i.val>>

INIT i.sig = 0 /\ i.ack = 0
NEXT Put \/ Get
SUBSCRIPT <<i.sig, i.val, o.ack>>
