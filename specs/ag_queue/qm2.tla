MODULE QM2
\* Queue 2: buffers q2 between channels z and o (capacity 1).
VARIABLES z.sig \in 0..1, z.ack \in 0..1, z.val \in 0..1
VARIABLES o.sig \in 0..1, o.ack \in 0..1, o.val \in 0..1
HIDDEN q2 \in Seq(0..1, 1)

DEFINE Enq == Len(q2) < 1
              /\ z.sig # z.ack /\ z.ack' = 1 - z.ack /\ z.sig' = z.sig /\ z.val' = z.val
              /\ q2' = Append(q2, z.val)
              /\ UNCHANGED <<o.sig, o.ack, o.val>>
DEFINE Deq == Len(q2) > 0
              /\ o.sig = o.ack /\ o.val' = Head(q2) /\ o.sig' = 1 - o.sig /\ o.ack' = o.ack
              /\ q2' = Tail(q2)
              /\ UNCHANGED <<z.sig, z.ack, z.val>>

INIT o.sig = 0 /\ o.ack = 0 /\ q2 = <<>>
NEXT Enq \/ Deq
SUBSCRIPT <<z.ack, o.sig, o.val, q2>>
FAIRNESS WF Enq \/ Deq
