MODULE G
\* The interleaving side condition of Section A.5: no two components'
\* output tuples change in the same step.
VARIABLES i.sig \in 0..1, i.ack \in 0..1, i.val \in 0..1
VARIABLES z.sig \in 0..1, z.ack \in 0..1, z.val \in 0..1
VARIABLES o.sig \in 0..1, o.ack \in 0..1, o.val \in 0..1

DISJOINT <<i.sig, i.val, o.ack>>, <<z.sig, z.val, i.ack>>, <<o.sig, o.val, z.ack>>
