MODULE QE2
\* Queue 2's environment: sends on z, acknowledges on o.
VARIABLES z.sig \in 0..1, z.ack \in 0..1, z.val \in 0..1
VARIABLES o.sig \in 0..1, o.ack \in 0..1, o.val \in 0..1

DEFINE PutZ == z.sig = z.ack /\ z.sig' = 1 - z.sig /\ z.ack' = z.ack
               /\ UNCHANGED <<o.sig, o.ack, o.val>>
DEFINE Get  == o.sig # o.ack /\ o.ack' = 1 - o.ack /\ o.sig' = o.sig /\ o.val' = o.val
               /\ UNCHANGED <<z.sig, z.ack, z.val>>

INIT z.sig = 0 /\ z.ack = 0
NEXT PutZ \/ Get
SUBSCRIPT <<z.sig, z.val, o.ack>>
