MODULE HourClock
\* Lamport's hour clock, with a hidden "ticked" flag demonstrating HIDDEN.
VARIABLE hr \in 1..12
HIDDEN ticked \in BOOLEAN

INIT hr = 1 /\ ticked = FALSE
ACTION Tick == hr' = (IF hr = 12 THEN 1 ELSE hr + 1) /\ ticked' = TRUE
NEXT Tick
SUBSCRIPT <<hr>>
FAIRNESS WF Tick
