MODULE RoundRobin
\* A round-robin scheduler over three tasks, exercising modular arithmetic
\* and sequence indexing in the spec language.
VARIABLES cur \in 0..2, served \in Seq(0..2, 3)

ACTION Serve == Len(served) < 3 /\ served' = Append(served, cur)
                /\ cur' = (cur + 1) % 3
ACTION Drain == Len(served) = 3 /\ served' = <<>> /\ cur' = cur

INIT cur = 0 /\ served = <<>>
NEXT Serve \/ Drain
SUBSCRIPT <<cur, served>>
FAIRNESS WF Serve \/ Drain
