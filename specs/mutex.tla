MODULE Mutex
\* Two peers alternating over a critical section (the arbiter example of
\* examples/arbiter.cpp as a closed system).
VARIABLES c1 \in 0..1, c2 \in 0..1

DEFINE Enter1 == c2 = 0 /\ c1' = 1 /\ UNCHANGED c2
DEFINE Leave1 == c1' = 0 /\ UNCHANGED c2
DEFINE Enter2 == c1 = 0 /\ c2' = 1 /\ UNCHANGED c1
DEFINE Leave2 == c2' = 0 /\ UNCHANGED c1

INIT c1 = 0 /\ c2 = 0
NEXT Enter1 \/ Leave1 \/ Enter2 \/ Leave2
SUBSCRIPT <<c1, c2>>
FAIRNESS WF Enter1 \/ Leave1 \/ Enter2 \/ Leave2
